#include <gtest/gtest.h>

#include "analysis/analysis_cache.h"
#include "analysis/multi_offload.h"
#include "analysis/platform_rta.h"
#include "common/fixtures.h"
#include "exp/experiment.h"
#include "gen/multi_device.h"
#include "util/rng.h"

/// The K-device chain bound (analysis/platform_rta.h) against its K = 1
/// reference implementation (analysis/multi_offload.h).  The equivalence
/// regression is exact: both are rationals, so EXPECT_EQ compares num/den.

namespace hedra {
namespace {

using model::Platform;

TEST(PlatformRtaTest, HandCheckedTwoDeviceExample) {
  const auto ex = testing::multi_device_example();
  const auto analysis =
      analysis::analyze_platform(ex.dag, Platform::parse("4:gpu,dsp"));
  EXPECT_EQ(analysis.vol_host, 17);
  EXPECT_EQ(analysis.max_host_path, 17);
  ASSERT_EQ(analysis.devices.size(), 2u);
  EXPECT_EQ(analysis.devices[0].name, "gpu");
  EXPECT_EQ(analysis.devices[0].volume, 6);
  EXPECT_EQ(analysis.devices[0].node_count, 1u);
  EXPECT_EQ(analysis.devices[1].name, "dsp");
  EXPECT_EQ(analysis.devices[1].volume, 5);
  EXPECT_EQ(analysis.host_term, Frac(17, 4));
  EXPECT_EQ(analysis.device_term, Frac(11));
  EXPECT_EQ(analysis.path_term, Frac(17 * 3, 4));
  // 17/m + 11 + 17(m−1)/m = 28 for every m: the host chain dominates.
  EXPECT_EQ(analysis.bound, Frac(28));
  EXPECT_EQ(analysis::rta_platform(ex.dag, 2), Frac(28));
  EXPECT_EQ(analysis::rta_platform(ex.dag, 16), Frac(28));
}

TEST(PlatformRtaTest, HomogeneousDagReducesToGrahamChainBound) {
  // Diamond v1(2) -> {a(3), b(5)} -> v4(1): vol = 11, max path = 8.
  const auto dag = testing::diamond(2, 3, 5, 1);
  const auto analysis =
      analysis::analyze_platform(dag, Platform::homogeneous(2));
  EXPECT_TRUE(analysis.devices.empty());
  EXPECT_EQ(analysis.device_term, Frac(0));
  EXPECT_EQ(analysis.bound, Frac(11, 2) + Frac(8, 2));
  // m = 1 degenerates to pure volume.
  EXPECT_EQ(analysis::rta_platform(dag, Platform::homogeneous(1)),
            Frac(11));
}

TEST(PlatformRtaTest, RejectsUnsupportedPlacements) {
  const auto ex = testing::multi_device_example();
  EXPECT_THROW(
      (void)analysis::analyze_platform(ex.dag, Platform::single_accelerator(2)),
      Error);
  EXPECT_THROW(
      (void)analysis::analyze_platform(ex.dag, Platform::homogeneous(2)),
      Error);
}

TEST(PlatformRtaTest, ExtraPlatformDevicesContributeZero) {
  const auto ex = testing::paper_example();
  const Frac narrow = analysis::rta_platform(ex.dag, 2);
  const Frac wide =
      analysis::rta_platform(ex.dag, Platform::symmetric(2, 4));
  EXPECT_EQ(narrow, wide);
}

/// SATELLITE REGRESSION: for generated single-device DAGs the K-device
/// bound equals the two-resource rta_multi_offload exactly, across the
/// paper's whole generation envelope (single offload via the paper pipeline
/// AND several offloads on one device via the multi-device pipeline).
TEST(PlatformRtaTest, SingleDeviceBoundEqualsMultiOffloadExactly) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    exp::BatchConfig config;
    config.params.min_nodes = 20;
    config.params.max_nodes = 120;
    config.coff_ratio = 0.05 + 0.1 * static_cast<double>(seed % 5);
    config.count = 40;
    config.seed = seed;
    for (const auto& dag : exp::generate_batch(config)) {
      for (const int m : {1, 2, 4, 8, 16}) {
        EXPECT_EQ(analysis::rta_platform(dag, m),
                  analysis::rta_multi_offload(dag, m))
            << "seed=" << seed << " m=" << m;
      }
    }
  }
}

TEST(PlatformRtaTest, SingleDeviceMultiOffloadBoundEqualsMultiOffloadExactly) {
  Rng master(77);
  gen::HierarchicalParams params;
  params.min_nodes = 20;
  params.max_nodes = 120;
  params.num_devices = 1;
  params.offloads_per_device = 3;
  for (int i = 0; i < 25; ++i) {
    Rng rng = master.fork();
    const auto dag = gen::generate_multi_device(params, 0.3, rng);
    EXPECT_EQ(dag.offload_nodes().size(), 3u);
    for (const int m : {1, 2, 4, 8, 16}) {
      EXPECT_EQ(analysis::rta_platform(dag, m),
                analysis::rta_multi_offload(dag, m))
          << "i=" << i << " m=" << m;
    }
  }
}

TEST(PlatformRtaTest, CacheServesTheSameBoundAsTheDirectApi) {
  Rng master(99);
  gen::HierarchicalParams params;
  params.min_nodes = 20;
  params.max_nodes = 100;
  params.num_devices = 3;
  params.offloads_per_device = 2;
  for (int i = 0; i < 10; ++i) {
    Rng rng = master.fork();
    const auto dag = gen::generate_multi_device(params, 0.4, rng);
    analysis::AnalysisCache cache(dag);
    const auto& q = cache.platform_quantities();
    EXPECT_EQ(q.device_volumes.size(), 3u);
    for (const int m : {1, 2, 4, 8, 16}) {
      EXPECT_EQ(cache.r_platform(m), analysis::rta_platform(dag, m))
          << "i=" << i << " m=" << m;
    }
  }
}

TEST(PlatformRtaTest, MoreCoresNeverLoosensTheBound) {
  const auto ex = testing::multi_device_example();
  Frac previous = analysis::rta_platform(ex.dag, 1);
  for (const int m : {2, 3, 4, 8, 16, 64}) {
    const Frac bound = analysis::rta_platform(ex.dag, m);
    EXPECT_LE(bound, previous) << "m=" << m;
    previous = bound;
  }
}

/// TENTPOLE HAND-CHECK: the multiplicity bound on the two-device example.
/// With gpu getting 2 units, vol_gpu/n = 3, the gpu node's chain weight is
/// 6·(2−1)/2 = 3, and for m >= 2 the all-host chain (17·(m−1)/m) still
/// dominates the weighted walk, so R_plat = 17/m + 8 + 17(m−1)/m = 25.
TEST(PlatformRtaTest, HandCheckedMultiUnitExample) {
  const auto ex = testing::multi_device_example();
  const auto analysis =
      analysis::analyze_platform(ex.dag, Platform::parse("4:gpu*2,dsp"));
  ASSERT_EQ(analysis.devices.size(), 2u);
  EXPECT_EQ(analysis.devices[0].units, 2);
  EXPECT_EQ(analysis.devices[0].term, Frac(3));
  EXPECT_EQ(analysis.devices[1].units, 1);
  EXPECT_EQ(analysis.devices[1].term, Frac(5));
  EXPECT_EQ(analysis.device_term, Frac(8));
  EXPECT_EQ(analysis.path_term, Frac(17 * 3, 4));
  EXPECT_EQ(analysis.bound, Frac(25));
  for (const int m : {2, 8, 16}) {
    EXPECT_EQ(analysis::rta_platform(ex.dag,
                                     Platform::parse(std::to_string(m) +
                                                     ":gpu*2,dsp")),
              Frac(25))
        << "m=" << m;
  }
  // m = 1: host weights vanish, the gpu node's own weight (3) is the chain.
  EXPECT_EQ(analysis::rta_platform(ex.dag, Platform::parse("1:gpu*2,dsp")),
            Frac(28));
  // Both classes doubled: device term 3 + 5/2, dsp chain weight 5/2.
  EXPECT_EQ(analysis::rta_platform(ex.dag, Platform::parse("4:gpu*2,dsp*2")),
            Frac(45, 2));
}

/// TENTPOLE REGRESSION PIN: on any all-single-unit platform the
/// generalised walk and bound reduce to the pre-multiplicity arithmetic
/// EXACTLY (rational equality on generated batches), and the Dag / FlatDag
/// weighting overloads agree with each other.
TEST(PlatformRtaTest, SingleUnitWeightingReproducesTheLegacyBoundExactly) {
  Rng master(1234);
  gen::HierarchicalParams params;
  params.min_nodes = 20;
  params.max_nodes = 120;
  params.num_devices = 3;
  params.offloads_per_device = 2;
  for (int i = 0; i < 15; ++i) {
    Rng rng = master.fork();
    const auto dag = gen::generate_multi_device(params, 0.35, rng);
    const graph::FlatDag flat(dag);
    const std::vector<int> ones(3, 1);
    analysis::AnalysisCache cache(dag);
    for (const int m : {1, 2, 4, 8, 16}) {
      const analysis::ChainWeighting weighting{m, ones, {}};
      const Frac walk = analysis::max_host_path(dag, weighting);
      EXPECT_EQ(walk, Frac(analysis::max_host_path(dag) * (m - 1), m))
          << "i=" << i << " m=" << m;
      EXPECT_EQ(walk, analysis::max_host_path(flat, weighting));
      EXPECT_EQ(cache.r_platform(m, ones), cache.r_platform(m));
      EXPECT_EQ(cache.r_platform(m, ones),
                analysis::rta_platform(dag, Platform::symmetric(m, 3, 1)));
    }
  }
}

TEST(PlatformRtaTest, CacheServesTheSameMultiUnitBoundAsTheDirectApi) {
  Rng master(4321);
  gen::HierarchicalParams params;
  params.min_nodes = 20;
  params.max_nodes = 100;
  params.num_devices = 2;
  params.offloads_per_device = 3;
  for (int i = 0; i < 10; ++i) {
    Rng rng = master.fork();
    const auto dag = gen::generate_multi_device(params, 0.4, rng);
    analysis::AnalysisCache cache(dag);
    for (const int units : {2, 3, 5}) {
      const Platform platform = Platform::symmetric(4, 2, units);
      const std::vector<int> vec(2, units);
      EXPECT_EQ(cache.r_platform(4, vec),
                analysis::rta_platform(dag, platform))
          << "i=" << i << " units=" << units;
      EXPECT_EQ(cache.r_platform(platform),
                analysis::rta_platform(dag, platform));
    }
  }
}

/// Each path value of the generalised walk has derivative
/// (chain_d − vol_d)/n_d² <= 0 in n_d, so the bound never grows when a
/// device class gains units.
TEST(PlatformRtaTest, MoreUnitsNeverLoosenTheBound) {
  Rng master(55);
  gen::HierarchicalParams params;
  params.min_nodes = 20;
  params.max_nodes = 100;
  params.num_devices = 3;
  params.offloads_per_device = 2;
  for (int i = 0; i < 8; ++i) {
    Rng rng = master.fork();
    const auto dag = gen::generate_multi_device(params, 0.45, rng);
    analysis::AnalysisCache cache(dag);
    for (const int m : {2, 8}) {
      Frac previous = cache.r_platform(m);
      for (const int units : {2, 3, 4, 6}) {
        const std::vector<int> vec(3, units);
        const Frac bound = cache.r_platform(m, vec);
        EXPECT_LE(bound, previous) << "i=" << i << " m=" << m
                                   << " units=" << units;
        previous = bound;
      }
    }
  }
}

TEST(PlatformRtaTest, SpeedupScalesDeviceAndChainTermsExactly) {
  // SATELLITE (PR 5): heterogeneous WCET scaling.  Chain v1(10) ->
  // vOff(8, d1) -> v3(10): vol_host = 20, max host path = 20, vol_1 = 8.
  graph::Dag dag;
  const auto a = dag.add_node(10);
  const auto b = dag.add_node_on(8, 1);
  const auto c = dag.add_node(10);
  dag.add_edge(a, b);
  dag.add_edge(b, c);

  // Unscaled, m = 4, n = 1: 20/4 + 8 + 20·(3/4) = 28.
  EXPECT_EQ(analysis::rta_platform(dag, Platform::parse("4:gpu")), Frac(28));
  // 2x device, single unit: the device term halves (8 -> 4); the chain
  // weight of a single-unit device stays zero.  28 - 4 = 24.
  const auto scaled =
      analysis::analyze_platform(dag, Platform::parse("4:gpu@2"));
  EXPECT_EQ(scaled.devices[0].speedup, Frac(2));
  EXPECT_EQ(scaled.devices[0].term, Frac(4));
  EXPECT_EQ(scaled.bound, Frac(24));
  // 2x device with 2 units on m = 2: 20/2 + 8/(2·2)
  //   + [10·(1/2) + (8/2)·(1/2) + 10·(1/2)] = 10 + 2 + 12 = 24.
  EXPECT_EQ(analysis::rta_platform(dag, Platform::parse("2:gpu*2@2")),
            Frac(24));
  const std::string text =
      analysis::explain(analysis::analyze_platform(dag,
                                                   Platform::parse("4:gpu@2")));
  EXPECT_NE(text.find("(n_d*s_d)"), std::string::npos);
  EXPECT_NE(text.find("at 2x speed"), std::string::npos);
}

TEST(PlatformRtaTest, UnitSpeedupsReduceToTheUnscaledBoundExactly) {
  // All-ones speedup vectors must not change a single rational — through
  // analyze_platform AND the AnalysisCache overloads.
  Rng master(77);
  gen::HierarchicalParams params;
  params.min_nodes = 20;
  params.max_nodes = 80;
  params.num_devices = 2;
  params.offloads_per_device = 2;
  for (int i = 0; i < 6; ++i) {
    Rng rng = master.fork();
    const auto dag = gen::generate_multi_device(params, 0.35, rng);
    Platform plain = Platform::parse("4:gpu*2,dsp");
    Platform unit_speed = plain;
    unit_speed.device_speedup = {Frac(1), Frac(1)};
    EXPECT_EQ(analysis::rta_platform(dag, plain),
              analysis::rta_platform(dag, unit_speed));
    analysis::AnalysisCache cache(dag);
    EXPECT_EQ(cache.r_platform(plain), cache.r_platform(unit_speed));
    const std::vector<int> units{2, 1};
    const std::vector<Frac> ones{Frac(1), Frac(1)};
    EXPECT_EQ(cache.r_platform(4, units, ones), cache.r_platform(4, units));
  }
}

TEST(PlatformRtaTest, FasterDevicesNeverLoosenTheBound) {
  Rng master(78);
  gen::HierarchicalParams params;
  params.min_nodes = 20;
  params.max_nodes = 80;
  params.num_devices = 3;
  params.offloads_per_device = 2;
  for (int i = 0; i < 6; ++i) {
    Rng rng = master.fork();
    const auto dag = gen::generate_multi_device(params, 0.4, rng);
    analysis::AnalysisCache cache(dag);
    for (const int m : {2, 8}) {
      const std::vector<int> units{2, 1, 3};
      Frac previous = cache.r_platform(m, units);
      for (const std::int64_t speedup : {2, 3, 6}) {
        const std::vector<Frac> speedups(3, Frac(speedup));
        const Frac bound = cache.r_platform(m, units, speedups);
        EXPECT_LE(bound, previous) << "m=" << m << " s=" << speedup;
        previous = bound;
      }
      // And a slowdown (s < 1) can only loosen it.
      const std::vector<Frac> slow(3, Frac(1, 2));
      EXPECT_GE(cache.r_platform(m, units, slow), cache.r_platform(m, units));
    }
  }
}

TEST(PlatformRtaTest, CacheSpeedupOverloadMatchesAnalyzePlatform) {
  Rng master(79);
  gen::HierarchicalParams params;
  params.min_nodes = 20;
  params.max_nodes = 80;
  params.num_devices = 2;
  params.offloads_per_device = 2;
  for (int i = 0; i < 6; ++i) {
    Rng rng = master.fork();
    const auto dag = gen::generate_multi_device(params, 0.3, rng);
    const Platform platform = Platform::parse("8:gpu*2@1.5,dsp@7/3");
    analysis::AnalysisCache cache(dag);
    EXPECT_EQ(cache.r_platform(platform),
              analysis::rta_platform(dag, platform));
  }
}

TEST(PlatformRtaTest, ExplainShowsUnitCountsOnMultiUnitPlatforms) {
  const auto ex = testing::multi_device_example();
  const auto analysis =
      analysis::analyze_platform(ex.dag, Platform::parse("4:gpu*2,dsp"));
  const std::string text = analysis::explain(analysis);
  EXPECT_NE(text.find("vol_d/n_d"), std::string::npos);
  EXPECT_NE(text.find("on 2 units"), std::string::npos);
  EXPECT_NE(text.find("gpu(d1 x2)"), std::string::npos);
  EXPECT_NE(text.find("= 25"), std::string::npos);
}

TEST(PlatformRtaTest, ExplainShowsEveryDeviceTerm) {
  const auto ex = testing::multi_device_example();
  const auto analysis =
      analysis::analyze_platform(ex.dag, Platform::parse("4:gpu,dsp"));
  const std::string text = analysis::explain(analysis);
  EXPECT_NE(text.find("R_plat"), std::string::npos);
  EXPECT_NE(text.find("gpu"), std::string::npos);
  EXPECT_NE(text.find("dsp"), std::string::npos);
  EXPECT_NE(text.find("max host path = 17"), std::string::npos);
  EXPECT_NE(text.find("= 28"), std::string::npos);
}

}  // namespace
}  // namespace hedra
