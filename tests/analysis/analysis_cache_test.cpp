#include "analysis/analysis_cache.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "exp/experiment.h"
#include "graph/algorithms.h"

/// The cache must be an observationally transparent memoisation layer:
/// every cached quantity equals what the direct (re-computing) API returns,
/// for every core count served from one instance.

namespace hedra::analysis {
namespace {

TEST(AnalysisCacheTest, PaperExampleNumbers) {
  const auto ex = testing::paper_example();
  AnalysisCache cache(ex.dag);
  EXPECT_EQ(cache.len_original(), 8);
  EXPECT_EQ(cache.len_transformed(), 10);
  EXPECT_EQ(cache.volume(), 18);
  EXPECT_EQ(cache.c_off(), 4);
  EXPECT_EQ(cache.scenario(2), Scenario::kS1);
  EXPECT_EQ(cache.r_het(2), Frac(12));
  EXPECT_EQ(cache.r_hom(2), Frac(13));
}

TEST(AnalysisCacheTest, MatchesDirectApiAcrossCoreCounts) {
  exp::BatchConfig config;
  config.params.min_nodes = 15;
  config.params.max_nodes = 50;
  config.coff_ratio = 0.25;
  config.count = 10;
  config.seed = 77;
  for (const auto& dag : exp::generate_batch(config)) {
    AnalysisCache cache(dag);
    const TransformResult direct_transform = transform_for_offload(dag);
    for (const int m : {1, 2, 4, 8, 16}) {
      EXPECT_EQ(cache.r_het(m), rta_heterogeneous(direct_transform, m));
      EXPECT_EQ(cache.scenario(m), classify_scenario(direct_transform, m));
      EXPECT_EQ(cache.r_hom(m), rta_homogeneous(dag, m));
      const HetAnalysis full = cache.analyze(m);
      const HetAnalysis direct = analyze_heterogeneous(dag, m);
      EXPECT_EQ(full.r_het, direct.r_het);
      EXPECT_EQ(full.r_hom, direct.r_hom);
      EXPECT_EQ(full.r_hom_gpar, direct.r_hom_gpar);
      EXPECT_EQ(full.scenario, direct.scenario);
      EXPECT_EQ(full.len_transformed, direct.len_transformed);
      EXPECT_EQ(full.len_gpar, direct.len_gpar);
      EXPECT_EQ(full.vol_gpar, direct.vol_gpar);
    }
  }
}

TEST(AnalysisCacheTest, ScenarioBoundariesMatchWideGparFixture) {
  // c_off in [2, 5) is S2.2, 5 the tie (goes to S2.1), above 5 S2.1 at m=2.
  for (const graph::Time c_off : {2, 4, 5, 6, 10}) {
    const graph::Dag dag = testing::wide_gpar_example(c_off);
    AnalysisCache cache(dag);
    // Materialise the scenario via the cache and check against a second,
    // independent cache to ensure memoisation does not leak across m.
    const Scenario at_m2 = cache.scenario(2);
    if (c_off < 5) {
      EXPECT_EQ(at_m2, Scenario::kS22) << "c_off " << c_off;
    } else {
      EXPECT_EQ(at_m2, Scenario::kS21) << "c_off " << c_off;
    }
  }
}

TEST(AnalysisCacheTest, TopologicalOrdersMatchGraphAlgorithms) {
  const auto ex = testing::fig3_example();
  AnalysisCache cache(ex.dag);
  EXPECT_EQ(cache.topo_original(), graph::topological_order(ex.dag));
  EXPECT_EQ(cache.topo_transformed(),
            graph::topological_order(cache.transformed()));
}

TEST(AnalysisCacheTest, TransformIsComputedLazilyAndReused) {
  const auto ex = testing::paper_example();
  AnalysisCache cache(ex.dag);
  const TransformResult& first = cache.transform();
  const TransformResult& second = cache.transform();
  EXPECT_EQ(&first, &second);  // same object, no recomputation
  EXPECT_EQ(&cache.critical_path(), &cache.critical_path());
}

}  // namespace
}  // namespace hedra::analysis
