#include "gen/taskset_gen.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/critical_path.h"
#include "graph/validate.h"
#include "util/error.h"

namespace hedra::gen {
namespace {

TEST(UUniFastTest, SumsToTotal) {
  Rng rng(1);
  for (const double total : {0.5, 1.0, 3.7}) {
    const auto utils = uunifast(6, total, rng);
    const double sum = std::accumulate(utils.begin(), utils.end(), 0.0);
    EXPECT_NEAR(sum, total, 1e-12);
  }
}

TEST(UUniFastTest, AllPositive) {
  Rng rng(2);
  for (int round = 0; round < 100; ++round) {
    for (const double u : uunifast(8, 4.0, rng)) {
      EXPECT_GT(u, 0.0);
      EXPECT_LT(u, 4.0);
    }
  }
}

TEST(UUniFastTest, SingleTaskTakesAll) {
  Rng rng(3);
  const auto utils = uunifast(1, 2.5, rng);
  ASSERT_EQ(utils.size(), 1u);
  EXPECT_DOUBLE_EQ(utils.front(), 2.5);
}

TEST(UUniFastTest, MeanIsTotalOverN) {
  Rng rng(4);
  double acc = 0.0;
  const int rounds = 2000;
  for (int i = 0; i < rounds; ++i) acc += uunifast(4, 2.0, rng)[0];
  EXPECT_NEAR(acc / rounds, 0.5, 0.03);
}

TEST(UUniFastTest, InvalidArgsThrow) {
  Rng rng(5);
  EXPECT_THROW(uunifast(0, 1.0, rng), Error);
  EXPECT_THROW(uunifast(3, 0.0, rng), Error);
}

TEST(TaskSetGenTest, ProducesRequestedCount) {
  Rng rng(7);
  TaskSetParams params;
  params.num_tasks = 5;
  const auto set = generate_task_set(params, rng);
  EXPECT_EQ(set.size(), 5u);
}

TEST(TaskSetGenTest, UtilizationNearTarget) {
  Rng rng(8);
  TaskSetParams params;
  params.num_tasks = 6;
  params.total_utilization = 2.0;
  const auto set = generate_task_set(params, rng);
  // Period rounding and the T >= len(G) floor shave a little utilisation.
  EXPECT_LE(set.total_utilization(), 2.0 + 1e-9);
  EXPECT_GT(set.total_utilization(), 1.2);
}

TEST(TaskSetGenTest, TasksAreValidHeterogeneousModels) {
  Rng rng(9);
  TaskSetParams params;
  params.num_tasks = 4;
  params.coff_ratio = 0.25;
  const auto set = generate_task_set(params, rng);
  for (const auto& task : set) {
    EXPECT_TRUE(graph::is_valid(task.dag(), graph::heterogeneous_rules()));
    EXPECT_GE(task.period(),
              graph::critical_path_length(task.dag()));
  }
}

TEST(TaskSetGenTest, ZeroCoffSkipsOffloading) {
  Rng rng(10);
  TaskSetParams params;
  params.coff_ratio = 0.0;
  const auto set = generate_task_set(params, rng);
  for (const auto& task : set) {
    EXPECT_TRUE(task.dag().offload_nodes().empty());
  }
}

TEST(TaskSetGenTest, ConstrainedDeadlinesWithinWindow) {
  Rng rng(11);
  TaskSetParams params;
  params.num_tasks = 8;
  params.implicit_deadlines = false;
  const auto set = generate_task_set(params, rng);
  for (const auto& task : set) {
    EXPECT_LE(task.deadline(), task.period());
    EXPECT_GE(task.deadline(),
              graph::critical_path_length(task.dag()));
  }
}

TEST(TaskSetGenTest, ImplicitDeadlinesEqualPeriods) {
  Rng rng(12);
  TaskSetParams params;
  params.implicit_deadlines = true;
  const auto set = generate_task_set(params, rng);
  for (const auto& task : set) {
    EXPECT_EQ(task.deadline(), task.period());
  }
}

TEST(TaskSetGenTest, Deterministic) {
  TaskSetParams params;
  Rng a(13);
  Rng b(13);
  const auto sa = generate_task_set(params, a);
  const auto sb = generate_task_set(params, b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].period(), sb[i].period());
    EXPECT_EQ(sa[i].dag().volume(), sb[i].dag().volume());
  }
}

TEST(TaskSetGenTest, InvalidParamsThrow) {
  Rng rng(14);
  TaskSetParams params;
  params.num_tasks = 0;
  EXPECT_THROW(generate_task_set(params, rng), Error);
  params = TaskSetParams{};
  params.coff_ratio = 1.0;
  EXPECT_THROW(generate_task_set(params, rng), Error);
}

}  // namespace
}  // namespace hedra::gen
