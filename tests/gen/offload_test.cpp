#include "gen/offload.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/fixtures.h"
#include "gen/hierarchical.h"
#include "graph/validate.h"
#include "util/error.h"

namespace hedra::gen {
namespace {

graph::Dag host_only_paper_shape() {
  // The paper example's shape, all nodes host, so an offload can be chosen.
  graph::Dag dag;
  const auto v1 = dag.add_node(1);
  const auto v2 = dag.add_node(4);
  const auto v3 = dag.add_node(6);
  const auto v4 = dag.add_node(2);
  const auto v5 = dag.add_node(1);
  const auto v6 = dag.add_node(4);
  dag.add_edge(v1, v2);
  dag.add_edge(v1, v3);
  dag.add_edge(v1, v4);
  dag.add_edge(v4, v6);
  dag.add_edge(v2, v5);
  dag.add_edge(v3, v5);
  dag.add_edge(v6, v5);
  return dag;
}

TEST(OffloadTest, SelectionPicksInternalNode) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    graph::Dag dag = host_only_paper_shape();
    const graph::NodeId voff = select_offload_node(dag, rng);
    EXPECT_GT(dag.in_degree(voff), 0u);
    EXPECT_GT(dag.out_degree(voff), 0u);
    EXPECT_EQ(dag.kind(voff), graph::NodeKind::kOffload);
    EXPECT_EQ(dag.label(voff), "vOff");
    EXPECT_TRUE(graph::is_valid(dag, graph::heterogeneous_rules()));
  }
}

TEST(OffloadTest, SelectionPreservesStructure) {
  Rng rng(3);
  graph::Dag dag = host_only_paper_shape();
  const auto edges_before = dag.edges();
  const auto volume_before = dag.volume();
  (void)select_offload_node(dag, rng);
  EXPECT_EQ(dag.edges(), edges_before);
  EXPECT_EQ(dag.volume(), volume_before);
}

TEST(OffloadTest, SelectionRejectsExistingOffload) {
  Rng rng(1);
  auto ex = testing::paper_example();
  EXPECT_THROW(select_offload_node(ex.dag, rng), Error);
}

TEST(OffloadTest, SelectionRejectsTinyGraph) {
  Rng rng(1);
  graph::Dag dag = testing::chain(2, 1);
  EXPECT_THROW(select_offload_node(dag, rng), Error);
}

TEST(OffloadTest, RatioAssignmentHitsTarget) {
  // On the 14-tick paper example, the 1-tick granularity floors how closely
  // tiny ratios can be realised, so the sweep starts at 10%.
  for (const double ratio : {0.1, 0.3, 0.5, 0.7}) {
    auto ex = testing::paper_example();
    const graph::Time c_off = set_offload_ratio(ex.dag, ratio);
    EXPECT_EQ(ex.dag.wcet(ex.voff), c_off);
    const double realised = offload_ratio(ex.dag);
    // Rounding to integer ticks: on a 14-tick host workload the error can be
    // a sizeable part of a percent, but must shrink with volume.
    EXPECT_NEAR(realised, ratio, 0.05) << "ratio=" << ratio;
  }
}

TEST(OffloadTest, RatioAccuracyImprovesWithVolume) {
  Rng rng(11);
  auto params = HierarchicalParams::large_tasks_100_250();
  graph::Dag dag = generate_hierarchical(params, rng);
  (void)select_offload_node(dag, rng);
  for (const double ratio : {0.0012, 0.01, 0.2, 0.5}) {
    (void)set_offload_ratio(dag, ratio);
    EXPECT_NEAR(offload_ratio(dag), ratio, 0.002) << "ratio=" << ratio;
  }
}

TEST(OffloadTest, RatioMinimumIsOneTick) {
  auto ex = testing::paper_example();
  (void)set_offload_ratio(ex.dag, 0.0001);
  EXPECT_EQ(ex.dag.wcet(ex.voff), 1);
}

TEST(OffloadTest, RatioBoundsEnforced) {
  auto ex = testing::paper_example();
  EXPECT_THROW(set_offload_ratio(ex.dag, 0.0), Error);
  EXPECT_THROW(set_offload_ratio(ex.dag, 1.0), Error);
  graph::Dag plain = testing::chain(3, 1);
  EXPECT_THROW(set_offload_ratio(plain, 0.5), Error);
}

TEST(OffloadTest, UniformAssignmentStaysWithinCap) {
  // §5.1: C_off uniform in [1, C_off_MAX] with C_off_MAX up to 60% of volume.
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    auto ex = testing::paper_example();
    (void)assign_offload_uniform(ex.dag, 0.6, rng);
    EXPECT_GE(ex.dag.wcet(ex.voff), 1);
    EXPECT_LE(offload_ratio(ex.dag), 0.6 + 0.03);  // rounding slack
  }
}

TEST(OffloadTest, UniformAssignmentCoversRange) {
  Rng rng(17);
  graph::Time smallest = 1 << 30;
  graph::Time largest = 0;
  for (int i = 0; i < 300; ++i) {
    auto ex = testing::paper_example();
    const graph::Time c = assign_offload_uniform(ex.dag, 0.6, rng);
    smallest = std::min(smallest, c);
    largest = std::max(largest, c);
  }
  EXPECT_EQ(smallest, 1);
  EXPECT_GE(largest, 15);  // cap is 0.6/0.4*14 = 21
}

TEST(OffloadTest, OffloadRatioRequiresOffloadNode) {
  const graph::Dag plain = testing::chain(3, 1);
  EXPECT_THROW((void)offload_ratio(plain), Error);
}

}  // namespace
}  // namespace hedra::gen
