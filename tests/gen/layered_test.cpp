#include "gen/layered.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/validate.h"
#include "util/error.h"

namespace hedra::gen {
namespace {

class LayeredPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LayeredPropertyTest, StructurallyValid) {
  Rng rng(GetParam());
  const graph::Dag dag = generate_layered(LayeredParams{}, rng);
  EXPECT_TRUE(graph::is_valid(dag, graph::homogeneous_rules()))
      << graph::validate(dag, graph::homogeneous_rules()).front();
}

TEST_P(LayeredPropertyTest, NoTransitiveEdges) {
  // Edges only connect consecutive layers, so shortcuts cannot exist.
  Rng rng(GetParam());
  const graph::Dag dag = generate_layered(LayeredParams{}, rng);
  EXPECT_TRUE(graph::is_transitively_reduced(dag));
}

TEST_P(LayeredPropertyTest, EveryNodeOnASourceSinkPath) {
  Rng rng(GetParam());
  const graph::Dag dag = generate_layered(LayeredParams{}, rng);
  const auto sources = dag.sources();
  const auto sinks = dag.sinks();
  ASSERT_EQ(sources.size(), 1u);
  ASSERT_EQ(sinks.size(), 1u);
  const auto from_source = graph::descendants(dag, sources.front());
  const auto to_sink = graph::ancestors(dag, sinks.front());
  for (graph::NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (v == sources.front() || v == sinks.front()) continue;
    EXPECT_TRUE(from_source.test(v)) << dag.label(v);
    EXPECT_TRUE(to_sink.test(v)) << dag.label(v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayeredPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(LayeredTest, DummyEndpointsAreSync) {
  Rng rng(9);
  const graph::Dag dag = generate_layered(LayeredParams{}, rng);
  EXPECT_EQ(dag.kind(dag.sources().front()), graph::NodeKind::kSync);
  EXPECT_EQ(dag.kind(dag.sinks().front()), graph::NodeKind::kSync);
  EXPECT_EQ(dag.wcet(dag.sources().front()), 0);
}

TEST(LayeredTest, WidthOneDegeneratesToChain) {
  Rng rng(11);
  LayeredParams params;
  params.min_width = 1;
  params.max_width = 1;
  params.min_layers = 4;
  params.max_layers = 4;
  const graph::Dag dag = generate_layered(params, rng);
  EXPECT_EQ(dag.num_nodes(), 6u);  // 4 layers + dummy src/snk
}

TEST(LayeredTest, ZeroEdgeProbabilityStillConnected) {
  Rng rng(13);
  LayeredParams params;
  params.p_edge = 0.0;  // connectivity repair must kick in
  const graph::Dag dag = generate_layered(params, rng);
  EXPECT_TRUE(graph::is_valid(dag, graph::homogeneous_rules()));
}

TEST(LayeredTest, FullEdgeProbability) {
  Rng rng(17);
  LayeredParams params;
  params.p_edge = 1.0;
  params.min_layers = 3;
  params.max_layers = 3;
  params.min_width = 2;
  params.max_width = 2;
  const graph::Dag dag = generate_layered(params, rng);
  // 2 layers of full bipartite (2x2=4 each) + dummy edges (2+2).
  EXPECT_EQ(dag.num_edges(), 4u + 4u + 4u);
}

TEST(LayeredTest, InvalidParamsThrow) {
  Rng rng(1);
  LayeredParams params;
  params.p_edge = -0.5;
  EXPECT_THROW(generate_layered(params, rng), Error);
  params = LayeredParams{};
  params.min_layers = 5;
  params.max_layers = 4;
  EXPECT_THROW(generate_layered(params, rng), Error);
}

}  // namespace
}  // namespace hedra::gen
