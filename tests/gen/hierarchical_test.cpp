#include "gen/hierarchical.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/critical_path.h"
#include "graph/validate.h"
#include "util/error.h"

namespace hedra::gen {
namespace {

/// Structural properties must hold for every seed — parameterized sweep.
class HierarchicalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HierarchicalPropertyTest, SmallPresetIsStructurallyValid) {
  Rng rng(GetParam());
  const auto params = HierarchicalParams::small_tasks();
  const graph::Dag dag = generate_hierarchical(params, rng);
  EXPECT_TRUE(graph::is_valid(dag, graph::homogeneous_rules()))
      << graph::validate(dag, graph::homogeneous_rules()).front();
}

TEST_P(HierarchicalPropertyTest, NodeCountWithinWindow) {
  Rng rng(GetParam());
  const auto params = HierarchicalParams::small_tasks();
  const graph::Dag dag = generate_hierarchical(params, rng);
  EXPECT_GE(dag.num_nodes(), static_cast<std::size_t>(params.min_nodes));
  EXPECT_LE(dag.num_nodes(), static_cast<std::size_t>(params.max_nodes));
}

TEST_P(HierarchicalPropertyTest, WcetsWithinRange) {
  Rng rng(GetParam());
  auto params = HierarchicalParams::small_tasks();
  params.wcet_min = 10;
  params.wcet_max = 20;
  const graph::Dag dag = generate_hierarchical(params, rng);
  for (graph::NodeId v = 0; v < dag.num_nodes(); ++v) {
    EXPECT_GE(dag.wcet(v), 10);
    EXPECT_LE(dag.wcet(v), 20);
  }
}

TEST_P(HierarchicalPropertyTest, LongestPathBoundedByDepth) {
  // §5.1: maxdepth determines the longest possible path: 2·maxdepth + 1
  // nodes (fork/join nesting).  maxdepth = 3 -> 7, maxdepth = 5 -> 11.
  Rng rng(GetParam());
  const auto params = HierarchicalParams::small_tasks();
  const graph::Dag dag = generate_hierarchical(params, rng);
  const auto path = graph::extract_critical_path(dag);
  EXPECT_LE(path.size(), static_cast<std::size_t>(2 * params.max_depth + 1));
}

TEST_P(HierarchicalPropertyTest, NoTransitiveEdges) {
  Rng rng(GetParam());
  const graph::Dag dag =
      generate_hierarchical(HierarchicalParams::large_tasks_100_250(), rng);
  EXPECT_TRUE(graph::is_transitively_reduced(dag));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchicalPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(HierarchicalTest, LargePresetReachesWindow) {
  Rng rng(7);
  const auto params = HierarchicalParams::large_tasks();
  for (int i = 0; i < 5; ++i) {
    const graph::Dag dag = generate_hierarchical(params, rng);
    EXPECT_GE(dag.num_nodes(), 100u);
    EXPECT_LE(dag.num_nodes(), 400u);
  }
}

TEST(HierarchicalTest, DeterministicGivenSeed) {
  const auto params = HierarchicalParams::small_tasks();
  Rng a(99);
  Rng b(99);
  const graph::Dag da = generate_hierarchical(params, a);
  const graph::Dag db = generate_hierarchical(params, b);
  ASSERT_EQ(da.num_nodes(), db.num_nodes());
  EXPECT_EQ(da.edges(), db.edges());
  for (graph::NodeId v = 0; v < da.num_nodes(); ++v) {
    EXPECT_EQ(da.wcet(v), db.wcet(v));
  }
}

TEST(HierarchicalTest, BranchFactorRespected) {
  Rng rng(3);
  auto params = HierarchicalParams::small_tasks();
  params.n_par = 3;
  for (int i = 0; i < 10; ++i) {
    const graph::Dag dag = generate_hierarchical(params, rng);
    for (graph::NodeId v = 0; v < dag.num_nodes(); ++v) {
      EXPECT_LE(dag.out_degree(v), 3u);
    }
  }
}

TEST(HierarchicalTest, UnreachableWindowThrows) {
  Rng rng(1);
  auto params = HierarchicalParams::small_tasks();
  params.min_nodes = 2;
  params.max_nodes = 3;  // expansion yields 1 or >= 4 nodes, never 2-3
  params.max_attempts = 200;
  EXPECT_THROW(generate_hierarchical(params, rng), Error);
}

TEST(HierarchicalTest, InvalidParamsThrow) {
  Rng rng(1);
  auto params = HierarchicalParams::small_tasks();
  params.p_par = 1.5;
  EXPECT_THROW(generate_hierarchical(params, rng), Error);
  params = HierarchicalParams::small_tasks();
  params.n_par = 1;
  EXPECT_THROW(generate_hierarchical(params, rng), Error);
  params = HierarchicalParams::small_tasks();
  params.wcet_min = 5;
  params.wcet_max = 4;
  EXPECT_THROW(generate_hierarchical(params, rng), Error);
}

TEST(HierarchicalTest, ZeroPparYieldsSingleNodeWindow) {
  Rng rng(5);
  auto params = HierarchicalParams::small_tasks();
  params.p_par = 0.0;
  params.min_nodes = 1;
  params.max_nodes = 1;
  const graph::Dag dag = generate_hierarchical(params, rng);
  EXPECT_EQ(dag.num_nodes(), 1u);
}

TEST(HierarchicalTest, PaperPresetDefaults) {
  const auto small = HierarchicalParams::small_tasks();
  EXPECT_EQ(small.max_depth, 3);
  EXPECT_EQ(small.n_par, 6);
  EXPECT_EQ(small.max_nodes, 100);
  const auto large = HierarchicalParams::large_tasks();
  EXPECT_EQ(large.max_depth, 5);
  EXPECT_EQ(large.n_par, 8);
  EXPECT_EQ(large.min_nodes, 100);
  EXPECT_EQ(large.max_nodes, 400);
  EXPECT_DOUBLE_EQ(large.p_par, 0.5);
  EXPECT_EQ(large.wcet_min, 1);
  EXPECT_EQ(large.wcet_max, 100);
}

}  // namespace
}  // namespace hedra::gen
