/// \file flat_gen_test.cpp
/// Arena-vs-legacy equivalence: the SoA batch generators must consume the
/// RNG fork-chain streams identically to the per-DAG pipelines, so for any
/// seed the arena batch is bit-identical to the legacy batch.  A golden
/// FNV-1a batch hash pins the stream against silent regressions in either
/// path.

#include "gen/flat_gen.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "exp/experiment.h"
#include "gen/hierarchical.h"
#include "gen/multi_device.h"
#include "gen/offload.h"
#include "graph/flat_dag.h"

namespace hedra::gen {
namespace {

using exp::BatchConfig;
using graph::Dag;
using graph::FlatDag;
using graph::FlatDagBatch;
using graph::FlatView;
using graph::NodeId;

/// Element-wise equality of a legacy FlatDag snapshot and an arena view.
void expect_view_equals_flat(const FlatView& view, const FlatDag& flat,
                             const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(view.num_nodes(), flat.num_nodes());
  ASSERT_EQ(view.num_edges(), flat.num_edges());
  EXPECT_EQ(view.max_device(), flat.max_device());
  EXPECT_EQ(view.num_offload_nodes(), flat.num_offload_nodes());
  for (NodeId v = 0; v < view.num_nodes(); ++v) {
    EXPECT_EQ(view.wcet(v), flat.wcet(v));
    EXPECT_EQ(view.device(v), flat.device(v));
    EXPECT_EQ(view.is_sync(v), flat.is_sync(v));
    ASSERT_TRUE(std::ranges::equal(view.successors(v), flat.successors(v)))
        << "successor list of node " << v;
    ASSERT_TRUE(
        std::ranges::equal(view.predecessors(v), flat.predecessors(v)))
        << "predecessor list of node " << v;
  }
  EXPECT_TRUE(std::ranges::equal(view.topological_order(),
                                 flat.topological_order()));
}

/// Field-for-field equality of a materialised Dag and the legacy Dag,
/// labels included.
void expect_dag_equals(const Dag& got, const Dag& want,
                       const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  for (NodeId v = 0; v < want.num_nodes(); ++v) {
    EXPECT_EQ(got.wcet(v), want.wcet(v));
    EXPECT_EQ(got.device(v), want.device(v));
    EXPECT_EQ(got.kind(v), want.kind(v));
    EXPECT_EQ(got.label(v), want.label(v));
    EXPECT_EQ(got.successors(v), want.successors(v));
    EXPECT_EQ(got.predecessors(v), want.predecessors(v));
  }
}

void expect_batch_equals_legacy(const BatchConfig& config,
                                const std::string& context) {
  const std::vector<Dag> legacy = exp::generate_batch(config);
  const FlatDagBatch batch = exp::generate_flat_batch(config);
  ASSERT_EQ(batch.size(), legacy.size()) << context;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    const FlatDag flat(legacy[i]);
    expect_view_equals_flat(batch.view(i), flat,
                            context + ", dag " + std::to_string(i));
    expect_dag_equals(batch.materialize(i), legacy[i],
                      context + ", dag " + std::to_string(i));
  }
}

BatchConfig small_config(std::uint64_t seed, double ratio) {
  BatchConfig config;
  config.params = HierarchicalParams::small_tasks();
  config.params.min_nodes = 10;
  config.params.max_nodes = 60;
  config.coff_ratio = ratio;
  config.count = 8;
  config.seed = seed;
  return config;
}

TEST(FlatGenTest, SingleOffloadBatchBitIdenticalToLegacy) {
  for (const std::uint64_t seed : {7ULL, 42ULL, 12345ULL}) {
    for (const double ratio : {0.1, 0.3}) {
      expect_batch_equals_legacy(
          small_config(seed, ratio),
          "seed " + std::to_string(seed) + " ratio " + std::to_string(ratio));
    }
  }
}

TEST(FlatGenTest, MultiDeviceBatchBitIdenticalToLegacy) {
  for (const int devices : {1, 2, 3}) {
    for (const int units : {1, 2}) {
      BatchConfig config = small_config(91u + devices, 0.3);
      config.params.num_devices = devices;
      config.params.offloads_per_device = 2;
      config.params.device_units.assign(devices, units);
      expect_batch_equals_legacy(config,
                                 "devices " + std::to_string(devices) +
                                     " units " + std::to_string(units));
    }
  }
}

TEST(FlatGenTest, MultiDeviceMixAndSpeedupBitIdenticalToLegacy) {
  BatchConfig config = small_config(4242, 0.4);
  config.params.num_devices = 2;
  config.params.offloads_per_device = 2;
  config.params.device_mix = {2.0, 1.0};
  config.params.device_speedup = {3.0, 1.5};
  expect_batch_equals_legacy(config, "mix+speedup");
}

TEST(FlatGenTest, RejectionLoopConsumesIdenticalStream) {
  // A narrow node window forces many rejected attempts; afterwards both
  // generators must leave the RNG at the same point.
  HierarchicalParams params = HierarchicalParams::small_tasks();
  params.min_nodes = 30;
  params.max_nodes = 34;
  Rng legacy_rng(99);
  Rng flat_rng(99);
  const Dag dag = generate_hierarchical(params, legacy_rng);
  FlatDagBatch batch;
  generate_hierarchical_flat(params, flat_rng, batch);
  EXPECT_EQ(batch.num_nodes(0), dag.num_nodes());
  EXPECT_EQ(legacy_rng.next_u64(), flat_rng.next_u64());
}

TEST(FlatGenTest, HierarchicalFlatMatchesLegacyStructure) {
  HierarchicalParams params = HierarchicalParams::large_tasks_100_250();
  Rng legacy_rng(5);
  Rng flat_rng(5);
  const Dag dag = generate_hierarchical(params, legacy_rng);
  FlatDagBatch batch;
  generate_hierarchical_flat(params, flat_rng, batch);
  const FlatDag flat(dag);
  expect_view_equals_flat(batch.view(0), flat, "plain hierarchical");
  expect_dag_equals(batch.materialize(0), dag, "plain hierarchical");
}

/// FNV-1a over the structural arrays of every DAG of a batch — one number
/// that pins the whole generated stream.
std::uint64_t batch_hash(const FlatDagBatch& batch) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h = (h ^ x) * 1099511628211ULL;
  };
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const FlatView view = batch.view(i);
    mix(view.num_nodes());
    mix(view.num_edges());
    for (NodeId v = 0; v < view.num_nodes(); ++v) {
      mix(static_cast<std::uint64_t>(view.wcet(v)));
      mix(view.device(v));
      for (const NodeId w : view.successors(v)) mix(w);
      for (const NodeId p : view.predecessors(v)) mix(p);
    }
    for (const NodeId v : view.topological_order()) mix(v);
  }
  return h;
}

TEST(FlatGenTest, GoldenBatchHashSingleOffload) {
  // Golden values: any change here is a seed-schema break and must be an
  // explicit, documented decision (DESIGN.md determinism contract).
  const FlatDagBatch batch = exp::generate_flat_batch(small_config(42, 0.1));
  EXPECT_EQ(batch_hash(batch), 10521195304060402351ULL);
}

TEST(FlatGenTest, GoldenBatchHashMultiDevice) {
  BatchConfig config = small_config(13, 0.3);
  config.params.num_devices = 2;
  config.params.offloads_per_device = 2;
  config.params.device_speedup = {2.0, 1.0};
  const FlatDagBatch batch = exp::generate_flat_batch(config);
  EXPECT_EQ(batch_hash(batch), 16074132588607916876ULL);
}

}  // namespace
}  // namespace hedra::gen
