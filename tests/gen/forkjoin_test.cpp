#include "gen/forkjoin.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/validate.h"
#include "util/error.h"

namespace hedra::gen {
namespace {

class ForkJoinPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForkJoinPropertyTest, StructurallyValid) {
  Rng rng(GetParam());
  const graph::Dag dag = generate_fork_join(ForkJoinParams{}, rng);
  EXPECT_TRUE(graph::is_valid(dag, graph::homogeneous_rules()))
      << graph::validate(dag, graph::homogeneous_rules()).front();
}

TEST_P(ForkJoinPropertyTest, NoTransitiveEdges) {
  Rng rng(GetParam());
  const graph::Dag dag = generate_fork_join(ForkJoinParams{}, rng);
  EXPECT_TRUE(graph::is_transitively_reduced(dag));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkJoinPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ForkJoinTest, DepthZeroIsFlatForkJoin) {
  Rng rng(3);
  ForkJoinParams params;
  params.depth = 0;
  params.min_branches = 3;
  params.max_branches = 3;
  params.min_segment = 1;
  params.max_segment = 1;
  const graph::Dag dag = generate_fork_join(params, rng);
  // fork + join + 3 single-node branches.
  EXPECT_EQ(dag.num_nodes(), 5u);
  EXPECT_EQ(dag.num_edges(), 6u);
}

TEST(ForkJoinTest, SegmentsFormChains) {
  Rng rng(5);
  ForkJoinParams params;
  params.depth = 0;
  params.min_branches = 2;
  params.max_branches = 2;
  params.min_segment = 3;
  params.max_segment = 3;
  const graph::Dag dag = generate_fork_join(params, rng);
  // fork + join + 2 branches x 3 nodes.
  EXPECT_EQ(dag.num_nodes(), 8u);
  // Each branch is a chain of 3: fork->n1, n1->n2, n2->n3, n3->join per branch.
  EXPECT_EQ(dag.num_edges(), 8u);
}

TEST(ForkJoinTest, WcetRangeRespected) {
  Rng rng(7);
  ForkJoinParams params;
  params.wcet_min = 3;
  params.wcet_max = 5;
  const graph::Dag dag = generate_fork_join(params, rng);
  for (graph::NodeId v = 0; v < dag.num_nodes(); ++v) {
    EXPECT_GE(dag.wcet(v), 3);
    EXPECT_LE(dag.wcet(v), 5);
  }
}

TEST(ForkJoinTest, Deterministic) {
  ForkJoinParams params;
  Rng a(42);
  Rng b(42);
  const graph::Dag da = generate_fork_join(params, a);
  const graph::Dag db = generate_fork_join(params, b);
  EXPECT_EQ(da.edges(), db.edges());
}

TEST(ForkJoinTest, InvalidParamsThrow) {
  Rng rng(1);
  ForkJoinParams params;
  params.min_branches = 1;
  EXPECT_THROW(generate_fork_join(params, rng), Error);
  params = ForkJoinParams{};
  params.min_segment = 0;
  EXPECT_THROW(generate_fork_join(params, rng), Error);
  params = ForkJoinParams{};
  params.depth = -1;
  EXPECT_THROW(generate_fork_join(params, rng), Error);
}

}  // namespace
}  // namespace hedra::gen
