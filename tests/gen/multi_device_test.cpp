#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "gen/hierarchical.h"
#include "gen/multi_device.h"
#include "graph/validate.h"
#include "util/rng.h"

namespace hedra {
namespace {

gen::HierarchicalParams test_params() {
  gen::HierarchicalParams params;
  params.min_nodes = 30;
  params.max_nodes = 120;
  return params;
}

TEST(MultiDeviceGenTest, SelectPlacesDistinctInternalNodesDeviceMajor) {
  Rng rng(1);
  graph::Dag dag = gen::generate_hierarchical(test_params(), rng);
  const auto chosen = gen::select_offload_nodes(dag, 3, 2, rng);
  ASSERT_EQ(chosen.size(), 6u);
  const std::set<graph::NodeId> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 6u);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto expected_device = static_cast<graph::DeviceId>(1 + i / 2);
    EXPECT_EQ(dag.device(chosen[i]), expected_device);
    EXPECT_GT(dag.in_degree(chosen[i]), 0u);
    EXPECT_GT(dag.out_degree(chosen[i]), 0u);
  }
  EXPECT_EQ(dag.device_ids(), (std::vector<graph::DeviceId>{1, 2, 3}));
  EXPECT_EQ(dag.offload_nodes().size(), 6u);
}

TEST(MultiDeviceGenTest, SelectRejectsBadRequests) {
  Rng rng(2);
  graph::Dag dag = gen::generate_hierarchical(test_params(), rng);
  EXPECT_THROW((void)gen::select_offload_nodes(dag, 0, 1, rng), Error);
  EXPECT_THROW((void)gen::select_offload_nodes(dag, 1, 0, rng), Error);
  EXPECT_THROW(
      (void)gen::select_offload_nodes(dag, 1000, 1000, rng), Error);
  (void)gen::select_offload_nodes(dag, 1, 1, rng);
  EXPECT_THROW((void)gen::select_offload_nodes(dag, 1, 1, rng), Error);
}

TEST(MultiDeviceGenTest, EvenSplitHitsTheTargetTotalRatio) {
  Rng rng(3);
  graph::Dag dag = gen::generate_hierarchical(test_params(), rng);
  (void)gen::select_offload_nodes(dag, 2, 2, rng);
  for (const double ratio : {0.05, 0.2, 0.4, 0.6}) {
    const gen::OffloadSplit split = gen::set_offload_ratio_multi(dag, ratio);
    graph::Time device_sum = 0;
    for (const auto device : dag.device_ids()) {
      device_sum += dag.volume_on(device);
    }
    EXPECT_EQ(split.total, device_sum);
    const double realised =
        static_cast<double>(split.total) / static_cast<double>(dag.volume());
    EXPECT_NEAR(realised, ratio, 0.02) << "target " << ratio;
    // Even mix: device shares are balanced within rounding.
    EXPECT_NEAR(gen::device_ratio(dag, 1), gen::device_ratio(dag, 2), 0.02);
  }
}

/// SATELLITE REGRESSION: the returned per-device breakdown makes the
/// cumulative-rounding split verifiable — every entry matches the graph's
/// realised per-device volume and the budget invariant Σ_d vol_d == total
/// holds for even and skewed mixes alike.
TEST(MultiDeviceGenTest, BreakdownMatchesRealisedVolumesAndSumsToTotal) {
  for (const std::uint64_t seed : {8u, 9u, 10u}) {
    Rng rng(seed);
    graph::Dag dag = gen::generate_hierarchical(test_params(), rng);
    (void)gen::select_offload_nodes(dag, 3, 2, rng);
    const std::vector<double> mix{5.0, 1.0, 0.001};
    const gen::OffloadSplit split = gen::set_offload_ratio_multi(dag, 0.35, mix);
    ASSERT_EQ(split.per_device.size(), 3u);
    graph::Time sum = 0;
    for (const auto& [device, volume] : split.per_device) {
      EXPECT_EQ(volume, dag.volume_on(device)) << "device " << device;
      // The documented floor: every node keeps WCET >= 1, so a device with
      // k offload nodes realises at least k ticks even at near-zero weight.
      EXPECT_GE(volume, static_cast<graph::Time>(dag.nodes_on(device).size()))
          << "device " << device;
      sum += volume;
    }
    EXPECT_EQ(sum, split.total);
  }
}

/// SATELLITE REGRESSION: a zero-weight mix previously divided by zero
/// (weight_sum == 0 → llround(NaN), undefined behaviour) and silently
/// starved devices; degenerate weights are now rejected up front.
TEST(MultiDeviceGenTest, RejectsZeroNegativeAndNonFiniteMixWeights) {
  Rng rng(11);
  graph::Dag dag = gen::generate_hierarchical(test_params(), rng);
  (void)gen::select_offload_nodes(dag, 2, 1, rng);
  EXPECT_THROW((void)gen::set_offload_ratio_multi(dag, 0.3, {0.0, 0.0}), Error)
      << "all-zero weights divide by zero";
  EXPECT_THROW((void)gen::set_offload_ratio_multi(dag, 0.3, {0.0, 1.0}), Error)
      << "a zero weight starves its device";
  EXPECT_THROW((void)gen::set_offload_ratio_multi(dag, 0.3, {-1.0, 2.0}),
               Error);
  EXPECT_THROW((void)gen::set_offload_ratio_multi(
                   dag, 0.3,
                   {std::numeric_limits<double>::quiet_NaN(), 1.0}),
               Error);
  EXPECT_THROW((void)gen::set_offload_ratio_multi(
                   dag, 0.3,
                   {std::numeric_limits<double>::infinity(), 1.0}),
               Error);
  // Tiny but positive weights stay legal and keep the per-node floor.
  const gen::OffloadSplit split =
      gen::set_offload_ratio_multi(dag, 0.3, {1e-9, 1.0});
  EXPECT_GE(split.per_device[0].second, 1);
}

TEST(MultiDeviceGenTest, MixWeightsSkewTheDeviceShares) {
  Rng rng(4);
  graph::Dag dag = gen::generate_hierarchical(test_params(), rng);
  (void)gen::select_offload_nodes(dag, 2, 1, rng);
  (void)gen::set_offload_ratio_multi(dag, 0.4, {3.0, 1.0});
  const double r1 = gen::device_ratio(dag, 1);
  const double r2 = gen::device_ratio(dag, 2);
  EXPECT_NEAR(r1 / r2, 3.0, 0.5);
  EXPECT_NEAR(r1 + r2, 0.4, 0.02);
}

TEST(MultiDeviceGenTest, RatioRejectsBadInput) {
  Rng rng(5);
  graph::Dag dag = gen::generate_hierarchical(test_params(), rng);
  EXPECT_THROW((void)gen::set_offload_ratio_multi(dag, 0.3), Error)
      << "no offload nodes selected yet";
  (void)gen::select_offload_nodes(dag, 2, 1, rng);
  EXPECT_THROW((void)gen::set_offload_ratio_multi(dag, 0.0), Error);
  EXPECT_THROW((void)gen::set_offload_ratio_multi(dag, 1.0), Error);
  EXPECT_THROW((void)gen::set_offload_ratio_multi(dag, 0.3, {1.0}), Error)
      << "mix size must match the devices present";
}

TEST(MultiDeviceGenTest, GeneratorProducesValidDeviceAnnotatedDags) {
  gen::HierarchicalParams params = test_params();
  params.num_devices = 3;
  params.offloads_per_device = 2;
  Rng master(6);
  graph::ValidationRules rules = graph::heterogeneous_rules();
  rules.required_offload_count = -1;
  for (int i = 0; i < 20; ++i) {
    Rng rng = master.fork();
    const graph::Dag dag = gen::generate_multi_device(params, 0.3, rng);
    EXPECT_TRUE(graph::is_valid(dag, rules));
    EXPECT_EQ(dag.device_ids().size(), 3u);
    EXPECT_EQ(dag.offload_nodes().size(), 6u);
    EXPECT_EQ(dag.max_device(), 3);
    const double realised = static_cast<double>(dag.volume() -
                                                dag.host_volume()) /
                            static_cast<double>(dag.volume());
    EXPECT_NEAR(realised, 0.3, 0.05);
  }
}

TEST(MultiDeviceGenTest, SpeedupScalesPerDeviceBudgets) {
  // SATELLITE (PR 5): heterogeneous WCET scaling.  A 2x device realises
  // about half the device-time volume of its unit-speed twin generated
  // from the identical RNG stream; unscaled devices are untouched.
  gen::HierarchicalParams params = test_params();
  params.num_devices = 2;
  params.offloads_per_device = 2;
  Rng a(31);
  Rng b(31);
  graph::Dag plain = gen::generate_hierarchical(params, a);
  graph::Dag scaled = gen::generate_hierarchical(params, b);
  (void)gen::select_offload_nodes(plain, 2, 2, a);
  (void)gen::select_offload_nodes(scaled, 2, 2, b);
  const auto plain_split = gen::set_offload_ratio_multi(plain, 0.4);
  const auto scaled_split =
      gen::set_offload_ratio_multi(scaled, 0.4, {}, {2.0, 1.0});
  ASSERT_EQ(plain_split.per_device.size(), 2u);
  ASSERT_EQ(scaled_split.per_device.size(), 2u);
  EXPECT_NEAR(static_cast<double>(scaled_split.per_device[0].second),
              static_cast<double>(plain_split.per_device[0].second) / 2.0,
              2.0);
  EXPECT_EQ(scaled_split.per_device[1].second,
            plain_split.per_device[1].second);
  // The split invariant holds for the scaled graph too.
  graph::Time sum = 0;
  for (const auto& [device, volume] : scaled_split.per_device) sum += volume;
  EXPECT_EQ(sum, scaled_split.total);
}

TEST(MultiDeviceGenTest, SpeedupRejectsDegenerateFactors) {
  gen::HierarchicalParams params = test_params();
  params.num_devices = 2;
  Rng rng(32);
  graph::Dag dag = gen::generate_hierarchical(params, rng);
  (void)gen::select_offload_nodes(dag, 2, 1, rng);
  EXPECT_THROW((void)gen::set_offload_ratio_multi(dag, 0.3, {}, {1.0}),
               Error);  // one factor for two devices
  EXPECT_THROW((void)gen::set_offload_ratio_multi(dag, 0.3, {}, {0.0, 1.0}),
               Error);
  EXPECT_THROW((void)gen::set_offload_ratio_multi(dag, 0.3, {}, {-2.0, 1.0}),
               Error);
}

TEST(MultiDeviceGenTest, HierarchicalParamsValidateSpeedups) {
  gen::HierarchicalParams params = test_params();
  params.num_devices = 2;
  params.device_speedup = {2.0};  // one entry for two devices
  EXPECT_THROW(params.validate(), Error);
  params.device_speedup = {2.0, 0.0};
  EXPECT_THROW(params.validate(), Error);
  params.device_speedup = {2.0, 1.5};
  EXPECT_NO_THROW(params.validate());
}

TEST(MultiDeviceGenTest, GeneratorIsDeterministicPerSeed) {
  gen::HierarchicalParams params = test_params();
  params.num_devices = 2;
  Rng a(7);
  Rng b(7);
  const graph::Dag first = gen::generate_multi_device(params, 0.25, a);
  const graph::Dag second = gen::generate_multi_device(params, 0.25, b);
  ASSERT_EQ(first.num_nodes(), second.num_nodes());
  EXPECT_EQ(first.edges(), second.edges());
  for (graph::NodeId v = 0; v < first.num_nodes(); ++v) {
    EXPECT_EQ(first.wcet(v), second.wcet(v));
    EXPECT_EQ(first.device(v), second.device(v));
  }
}

}  // namespace
}  // namespace hedra
