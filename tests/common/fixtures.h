#pragma once

/// \file fixtures.h
/// Shared task-graph fixtures for the test suite, including the paper's
/// running example (Figures 1 and 2) reconstructed so that every number the
/// text states is reproduced, and the transformation walk-through of
/// Figure 3.

#include <map>
#include <string>

#include "graph/dag.h"

namespace hedra::testing {

using graph::Dag;
using graph::NodeId;
using graph::NodeKind;

/// Node handles of the running example.
struct PaperExample {
  Dag dag;
  NodeId v1, v2, v3, v4, v5, voff;
};

/// The heterogeneous DAG of Figure 1(a).  WCETs: C1=1, C2=4, C3=6, C4=2,
/// C5=1, C_off=4.  Verified properties (all stated in the paper):
///  - vol(G) = 18, len(G) = 8 with critical path {v1, v3, v5};
///  - R_hom (m=2) = 8 + (18-8)/2 = 13;
///  - the unsafe §3.2 bound = 8 + (18-8-4)/2 = 11;
///  - breadth-first execution on m=2 reaches response time 12 (Fig. 1(c)),
///    exceeding the unsafe bound;
///  - after Algorithm 1, len(G') = 10 (Fig. 2(a)) and the breadth-first
///    schedule of τ' finishes at 10 (Fig. 2(b));
///  - G_par = {v2, v3}; Theorem 1 applies Scenario 1 giving R_het = 12.
inline PaperExample paper_example() {
  PaperExample ex;
  ex.v1 = ex.dag.add_node(1, NodeKind::kHost, "v1");
  ex.v2 = ex.dag.add_node(4, NodeKind::kHost, "v2");
  ex.v3 = ex.dag.add_node(6, NodeKind::kHost, "v3");
  ex.v4 = ex.dag.add_node(2, NodeKind::kHost, "v4");
  ex.v5 = ex.dag.add_node(1, NodeKind::kHost, "v5");
  ex.voff = ex.dag.add_node(4, NodeKind::kOffload, "vOff");
  ex.dag.add_edge(ex.v1, ex.v2);
  ex.dag.add_edge(ex.v1, ex.v3);
  ex.dag.add_edge(ex.v1, ex.v4);
  ex.dag.add_edge(ex.v4, ex.voff);
  ex.dag.add_edge(ex.v2, ex.v5);
  ex.dag.add_edge(ex.v3, ex.v5);
  ex.dag.add_edge(ex.voff, ex.v5);
  return ex;
}

/// Node handles of the Figure 3 transformation walk-through.
struct Fig3Example {
  Dag dag;
  std::map<std::string, NodeId> by_name;
  NodeId id(const std::string& name) const { return by_name.at(name); }
};

/// A 12-node DAG consistent with every edge move Figure 3 describes:
/// direct predecessors v8, v9 of v_off; (v8, v11) re-parented under v_sync;
/// indirect-predecessor edges (v1, v2) and (v3, v7) re-parented; G_par =
/// {v2, v4, v5, v6, v7, v11}.
inline Fig3Example fig3_example() {
  Fig3Example ex;
  const auto add = [&](const std::string& name, graph::Time wcet,
                       NodeKind kind = NodeKind::kHost) {
    ex.by_name[name] = ex.dag.add_node(wcet, kind, name);
  };
  add("v1", 1);
  add("v2", 2);
  add("v3", 3);
  add("v4", 2);
  add("v5", 2);
  add("v6", 1);
  add("v7", 4);
  add("v8", 2);
  add("v9", 3);
  add("v10", 1);
  add("v11", 2);
  add("vOff", 5, NodeKind::kOffload);
  const auto edge = [&](const std::string& a, const std::string& b) {
    ex.dag.add_edge(ex.id(a), ex.id(b));
  };
  edge("v1", "v2");    // pink: moved under v_sync
  edge("v1", "v3");
  edge("v3", "v7");    // pink: moved under v_sync
  edge("v3", "v8");
  edge("v3", "v9");
  edge("v8", "vOff");  // replaced by (v8, v_sync)
  edge("v9", "vOff");  // replaced by (v9, v_sync)
  edge("v8", "v11");   // black: moved under v_sync
  edge("v2", "v4");
  edge("v2", "v5");
  edge("v4", "v6");
  edge("v5", "v6");
  edge("v6", "v10");
  edge("v7", "v10");
  edge("v11", "v10");
  edge("vOff", "v10");
  return ex;
}

/// Chain v1(1) -> v_off(c_off) -> v3(1) plus one parallel node p(1):
/// after transformation v_off is critical and C_off >= R_hom(G_par),
/// i.e. Scenario 2.1, whenever c_off >= 1.
inline Dag s21_example(graph::Time c_off = 10) {
  Dag dag;
  const NodeId v1 = dag.add_node(1, NodeKind::kHost, "v1");
  const NodeId p = dag.add_node(1, NodeKind::kHost, "p");
  const NodeId voff = dag.add_node(c_off, NodeKind::kOffload, "vOff");
  const NodeId v3 = dag.add_node(1, NodeKind::kHost, "v3");
  dag.add_edge(v1, voff);
  dag.add_edge(v1, p);
  dag.add_edge(p, v3);
  dag.add_edge(voff, v3);
  return dag;
}

/// v1(1) -> {p1..p4 (2 each), v_off(c_off)} -> v6(1) (after transformation).
/// G_par is wide: len(G_par) = 2, vol(G_par) = 8; with m=2,
/// R_hom(G_par) = 5.  c_off in [2, 5) yields Scenario 2.2; c_off = 5 the
/// S2.1/S2.2 boundary; c_off > 5 Scenario 2.1.
inline Dag wide_gpar_example(graph::Time c_off) {
  Dag dag;
  const NodeId v1 = dag.add_node(1, NodeKind::kHost, "v1");
  const NodeId voff = dag.add_node(c_off, NodeKind::kOffload, "vOff");
  const NodeId v6 = dag.add_node(1, NodeKind::kHost, "v6");
  dag.add_edge(v1, voff);
  dag.add_edge(voff, v6);
  for (int i = 0; i < 4; ++i) {
    const NodeId p =
        dag.add_node(2, NodeKind::kHost, "p" + std::to_string(i + 1));
    dag.add_edge(v1, p);
    dag.add_edge(p, v6);
  }
  return dag;
}

/// A simple diamond: v1 -> {a, b} -> v4 with the given WCETs.
inline Dag diamond(graph::Time c1, graph::Time ca, graph::Time cb,
                   graph::Time c4) {
  Dag dag;
  const NodeId v1 = dag.add_node(c1, NodeKind::kHost, "v1");
  const NodeId a = dag.add_node(ca, NodeKind::kHost, "a");
  const NodeId b = dag.add_node(cb, NodeKind::kHost, "b");
  const NodeId v4 = dag.add_node(c4, NodeKind::kHost, "v4");
  dag.add_edge(v1, a);
  dag.add_edge(v1, b);
  dag.add_edge(a, v4);
  dag.add_edge(b, v4);
  return dag;
}

/// Node handles of the two-device platform example.
struct MultiDeviceExample {
  Dag dag;
  NodeId src, a, gpu, dsp, b, snk;
};

/// A single-source/sink DAG spanning two accelerator classes:
///   src(2) -> {a(8) -> b(4), gpu(6) on device 1, dsp(5) on device 2},
///   gpu -> b, {b, dsp} -> snk(3).
/// Hand-checked quantities: vol = 28, vol_host = 17, vol_d1 = 6, vol_d2 = 5,
/// max host path = src+a+b+snk = 17, so the K-device chain bound is
/// R_plat(m) = 17/m + 11 + 17·(m−1)/m  (= 28 for every m — the host chain
/// dominates exactly).
inline MultiDeviceExample multi_device_example() {
  MultiDeviceExample ex;
  ex.src = ex.dag.add_node(2, NodeKind::kHost, "src");
  ex.a = ex.dag.add_node(8, NodeKind::kHost, "a");
  ex.gpu = ex.dag.add_node_on(6, 1, "gpu");
  ex.dsp = ex.dag.add_node_on(5, 2, "dsp");
  ex.b = ex.dag.add_node(4, NodeKind::kHost, "b");
  ex.snk = ex.dag.add_node(3, NodeKind::kHost, "snk");
  ex.dag.add_edge(ex.src, ex.a);
  ex.dag.add_edge(ex.src, ex.gpu);
  ex.dag.add_edge(ex.src, ex.dsp);
  ex.dag.add_edge(ex.a, ex.b);
  ex.dag.add_edge(ex.gpu, ex.b);
  ex.dag.add_edge(ex.b, ex.snk);
  ex.dag.add_edge(ex.dsp, ex.snk);
  return ex;
}

/// A chain of `n` host nodes with the given per-node WCET.
inline Dag chain(int n, graph::Time wcet) {
  Dag dag;
  NodeId prev = graph::kInvalidNode;
  for (int i = 0; i < n; ++i) {
    const NodeId v = dag.add_node(wcet);
    if (prev != graph::kInvalidNode) dag.add_edge(prev, v);
    prev = v;
  }
  return dag;
}

}  // namespace hedra::testing
