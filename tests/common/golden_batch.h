#pragma once

/// \file golden_batch.h
/// Pinned Monte-Carlo instances shared by the golden regression tests.
///
/// The simulator and the exact solver are performance-critical and have been
/// rewritten over flat CSR snapshots; these helpers define the frozen
/// instance batches whose behaviour is pinned by committed golden files
/// (tests/golden/).  The goldens were generated from the pre-refactor
/// implementations, so byte-identical output proves the rewrites preserved
/// every scheduling decision and every optimal makespan.
///
/// Regenerating (only when behaviour is *intentionally* changed): compile a
/// small main that writes golden_trace_text(K) to tests/golden/traces_k<K>.txt
/// for K in {1, 2, 3} and golden_bnb_text() to tests/golden/bnb_results.txt.

#include <sstream>
#include <string>
#include <vector>

#include "exact/bnb.h"
#include "exp/experiment.h"
#include "sim/scheduler.h"

namespace hedra::goldens {

/// A small pinned batch of K-device DAGs (K = `devices`).
inline std::vector<graph::Dag> golden_sim_batch(int devices) {
  exp::BatchConfig config;
  config.params.max_depth = 4;
  config.params.n_par = 6;
  config.params.min_nodes = 30;
  config.params.max_nodes = 60;
  config.params.num_devices = devices;
  config.params.offloads_per_device = 1;
  config.coff_ratio = 0.25;
  config.count = 4;
  config.seed = 0xBEEF00ULL + static_cast<std::uint64_t>(devices);
  return exp::generate_batch(config);
}

/// Every pinned DAG simulated under every ready-queue policy and m ∈ {2, 8},
/// serialised with ScheduleTrace::to_text under a per-run header line.
inline std::string golden_trace_text(int devices) {
  std::ostringstream os;
  const auto batch = golden_sim_batch(devices);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (const auto policy : sim::all_policies()) {
      for (const int m : {2, 8}) {
        sim::SimConfig config;
        config.cores = m;
        config.policy = policy;
        const auto trace = sim::simulate(batch[i], config);
        os << "# K=" << devices << " dag=" << i
           << " policy=" << sim::to_string(policy) << " m=" << m << '\n'
           << trace.to_text();
      }
    }
  }
  return os.str();
}

/// The multiplicity goldens (PR 4): the first two DAGs of the K ∈ {2, 3}
/// pinned batches simulated with n_d ∈ {2, 3} units on every device, under
/// every ready-queue policy and m ∈ {2, 8}.  Pins the free-unit assignment
/// (FIFO per device, smallest free unit index first) and the extended
/// even-negative unit-id encoding of sim/trace.h.
inline std::string golden_units_trace_text() {
  std::ostringstream os;
  for (const int devices : {2, 3}) {
    const auto batch = golden_sim_batch(devices);
    for (std::size_t i = 0; i < 2 && i < batch.size(); ++i) {
      for (const int units : {2, 3}) {
        for (const auto policy : sim::all_policies()) {
          for (const int m : {2, 8}) {
            sim::SimConfig config;
            config.cores = m;
            config.policy = policy;
            config.device_units.assign(static_cast<std::size_t>(devices),
                                       units);
            const auto trace = sim::simulate(batch[i], config);
            os << "# K=" << devices << " dag=" << i << " units=" << units
               << " policy=" << sim::to_string(policy) << " m=" << m << '\n'
               << trace.to_text();
          }
        }
      }
    }
  }
  return os.str();
}

/// The pinned single-accelerator batches the exact solver's results are
/// frozen on: the fig7 size classes, solved with a pure node budget (no
/// wall-clock dependence) generous enough that every instance closes.
struct GoldenBnbCase {
  int m;
  int min_nodes;
  int max_nodes;
  std::uint64_t seed;
};

inline const std::vector<GoldenBnbCase>& golden_bnb_cases() {
  static const std::vector<GoldenBnbCase> kCases{
      {2, 3, 20, 0xB0B0001ULL},
      {8, 20, 40, 0xB0B0002ULL},
      {3, 10, 30, 0xB0B0003ULL},
      {4, 15, 35, 0xB0B0004ULL},
  };
  return kCases;
}

inline std::vector<graph::Dag> golden_bnb_batch(const GoldenBnbCase& c) {
  exp::BatchConfig config;
  config.params = gen::HierarchicalParams::small_tasks();
  config.params.min_nodes = c.min_nodes;
  config.params.max_nodes = c.max_nodes;
  config.coff_ratio = 0.3;
  config.count = 10;
  config.seed = c.seed;
  return exp::generate_batch(config);
}

/// Node-budgeted so the outcome is machine-independent; the budget is far
/// above what these sizes need, so every instance is proven optimal.
inline exact::BnbConfig golden_bnb_config() {
  exact::BnbConfig config;
  config.max_nodes = 5'000'000;
  config.time_limit_sec = 300.0;
  return config;
}

/// One line per instance: `m dag makespan proven root_lb heuristic_ub`.
/// nodes_explored is deliberately excluded — it is allowed to change when
/// the search is reorganised; the results are not.
inline std::string golden_bnb_text() {
  std::ostringstream os;
  for (const auto& c : golden_bnb_cases()) {
    const auto batch = golden_bnb_batch(c);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto result =
          exact::min_makespan(batch[i], c.m, golden_bnb_config());
      os << c.m << ' ' << i << ' ' << result.makespan << ' '
         << (result.proven_optimal ? 1 : 0) << ' ' << result.root_lower_bound
         << ' ' << result.heuristic_upper_bound << '\n';
    }
  }
  return os.str();
}

}  // namespace hedra::goldens
