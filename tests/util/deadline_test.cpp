#include "util/deadline.h"

#include <gtest/gtest.h>

#include <thread>

namespace hedra::util {
namespace {

TEST(DeadlineTest, DefaultNeverExpires) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.unlimited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining(), Deadline::Clock::duration::max());
  EXPECT_TRUE(Deadline::never().unlimited());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::after(std::chrono::nanoseconds(0)).expired());
  EXPECT_TRUE(Deadline::after(std::chrono::nanoseconds(-5)).expired());
  EXPECT_TRUE(Deadline::after_seconds(0.0).expired());
  EXPECT_TRUE(Deadline::after_seconds(-1.0).expired());
}

TEST(DeadlineTest, FutureDeadlineExpiresAfterSleep) {
  const Deadline deadline = Deadline::after(std::chrono::milliseconds(5));
  EXPECT_FALSE(deadline.unlimited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining(), Deadline::Clock::duration::zero());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining(), Deadline::Clock::duration::zero());
}

TEST(DeadlineTest, AtExpiresAtTheGivenInstant) {
  const auto when = Deadline::Clock::now() + std::chrono::hours(1);
  const Deadline deadline = Deadline::at(when);
  EXPECT_FALSE(deadline.unlimited());
  EXPECT_EQ(deadline.when(), when);
  EXPECT_FALSE(deadline.expired());
}

TEST(DeadlineTest, SoonerPicksTheEarlier) {
  const Deadline near = Deadline::after(std::chrono::seconds(1));
  const Deadline far = Deadline::after(std::chrono::hours(1));
  EXPECT_EQ(Deadline::sooner(near, far).when(), near.when());
  EXPECT_EQ(Deadline::sooner(far, near).when(), near.when());
  // Unlimited is the identity element.
  EXPECT_EQ(Deadline::sooner(Deadline::never(), near).when(), near.when());
  EXPECT_EQ(Deadline::sooner(near, Deadline::never()).when(), near.when());
  EXPECT_TRUE(
      Deadline::sooner(Deadline::never(), Deadline::never()).unlimited());
}

TEST(BudgetTest, UnlimitedBudgetNeverExhausts) {
  Budget budget;
  for (int i = 0; i < 10'000; ++i) EXPECT_TRUE(budget.consume());
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.outcome(), Outcome::kComplete);
  EXPECT_EQ(budget.used(), 10'000u);
}

TEST(BudgetTest, WorkCapExhaustsPermanently) {
  Budget budget{Deadline::never(), 100};
  std::uint64_t granted = 0;
  while (budget.consume()) ++granted;
  EXPECT_EQ(granted, 100u);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.outcome(), Outcome::kBudgetExhausted);
  // Sticky: no later consume succeeds.
  EXPECT_FALSE(budget.consume());
  EXPECT_FALSE(budget.consume(0));
}

TEST(BudgetTest, MultiUnitConsumeCountsUnits) {
  Budget budget{Deadline::never(), 100};
  EXPECT_TRUE(budget.consume(60));
  EXPECT_FALSE(budget.consume(60));  // 120 > 100
  EXPECT_TRUE(budget.exhausted());
}

TEST(BudgetTest, ExpiredDeadlineTripsWithinOneStride) {
  Budget budget{Deadline::after(std::chrono::nanoseconds(1))};
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // The clock is only polled every kClockStride units, so exhaustion lands
  // within one stride of the expiry — never later.
  std::uint64_t granted = 0;
  while (budget.consume() && granted < 10 * Budget::kClockStride) ++granted;
  EXPECT_LE(granted, Budget::kClockStride);
  EXPECT_TRUE(budget.exhausted());
}

TEST(BudgetTest, CheckNowPollsTheClockImmediately) {
  Budget fresh{Deadline::after(std::chrono::hours(1))};
  EXPECT_FALSE(fresh.check_now());
  Budget expired{Deadline::after(std::chrono::nanoseconds(1))};
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.check_now());
  EXPECT_TRUE(expired.exhausted());
}

TEST(BudgetTest, ForceExhaustCancels) {
  Budget budget;
  budget.force_exhaust();
  EXPECT_TRUE(budget.exhausted());
  EXPECT_FALSE(budget.consume());
  EXPECT_EQ(budget.outcome(), Outcome::kBudgetExhausted);
}

TEST(OutcomeTest, ToStringIsStable) {
  EXPECT_STREQ(to_string(Outcome::kComplete), "complete");
  EXPECT_STREQ(to_string(Outcome::kBudgetExhausted), "budget-exhausted");
  EXPECT_STREQ(to_string(Outcome::kFailed), "failed");
}

}  // namespace
}  // namespace hedra::util
