#include "util/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/error.h"

namespace hedra::fault {
namespace {

/// Every test leaves the registry disabled and empty — fault state is
/// process-global and the other suites assume the production default.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { clear_registry(); }
  void TearDown() override { clear_registry(); }
};

TEST_F(FaultTest, DisabledByDefaultAndZeroOverheadPathTaken) {
  EXPECT_FALSE(enabled());
  // Sites do not even register while disabled.
  HEDRA_FAULT("test.site.disabled");
  EXPECT_TRUE(registered_sites().empty());
}

TEST_F(FaultTest, DiscoveryConfigRegistersWithoutFiring) {
  configure("*=0");
  EXPECT_TRUE(enabled());
  HEDRA_FAULT("test.site.a");
  HEDRA_FAULT("test.site.b");
  HEDRA_FAULT("test.site.a");
  const auto sites = registered_sites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "test.site.a");
  EXPECT_EQ(sites[1], "test.site.b");
  EXPECT_EQ(hits("test.site.a"), 2u);
  EXPECT_EQ(fired("test.site.a"), 0u);
}

TEST_F(FaultTest, NthTriggerFiresOnExactlyThatHit) {
  configure("test.site=@3");
  HEDRA_FAULT("test.site");
  HEDRA_FAULT("test.site");
  EXPECT_THROW(HEDRA_FAULT("test.site"), Injected);
  // One-shot: the 4th hit passes again.
  HEDRA_FAULT("test.site");
  EXPECT_EQ(hits("test.site"), 4u);
  EXPECT_EQ(fired("test.site"), 1u);
}

TEST_F(FaultTest, RateOneAlwaysFiresAndNamesTheSite) {
  configure("test.site=1.0");
  try {
    HEDRA_FAULT("test.site");
    FAIL() << "expected Injected";
  } catch (const Injected& e) {
    EXPECT_EQ(e.site(), "test.site");
    EXPECT_NE(std::string(e.what()).find("test.site"), std::string::npos);
  }
}

TEST_F(FaultTest, ExactEntryOverridesWildcard) {
  configure("*=1.0,test.safe=0");
  HEDRA_FAULT("test.safe");  // must NOT fire
  EXPECT_THROW(HEDRA_FAULT("test.other"), Injected);
}

TEST_F(FaultTest, DeterministicPerSiteSequence) {
  // The per-site RNG forks from (seed, fnv1a(site)), so the fire pattern of
  // a site is a pure function of the spec and seed.
  auto pattern = [](std::uint64_t seed) {
    configure("test.det=0.5", seed);
    std::string fired_pattern;
    for (int i = 0; i < 64; ++i) {
      try {
        HEDRA_FAULT("test.det");
        fired_pattern += '.';
      } catch (const Injected&) {
        fired_pattern += 'X';
      }
    }
    return fired_pattern;
  };
  const std::string a = pattern(42);
  const std::string b = pattern(42);
  const std::string c = pattern(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 chance of a flake; good enough
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST_F(FaultTest, IndependentSitesDoNotPerturbEachOther) {
  // Interleaving hits of another site must not change a site's pattern.
  configure("test.det=0.5,test.noise=0", 7);
  std::string alone;
  for (int i = 0; i < 32; ++i) {
    try {
      HEDRA_FAULT("test.det");
      alone += '.';
    } catch (const Injected&) {
      alone += 'X';
    }
  }
  configure("test.det=0.5,test.noise=0", 7);
  std::string interleaved;
  for (int i = 0; i < 32; ++i) {
    HEDRA_FAULT("test.noise");
    try {
      HEDRA_FAULT("test.det");
      interleaved += '.';
    } catch (const Injected&) {
      interleaved += 'X';
    }
  }
  EXPECT_EQ(alone, interleaved);
}

TEST_F(FaultTest, ResetKeepsTheInventory) {
  configure("*=0");
  HEDRA_FAULT("test.site.kept");
  reset();
  EXPECT_FALSE(enabled());
  const auto sites = registered_sites();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "test.site.kept");
  // clear_registry forgets everything.
  clear_registry();
  EXPECT_TRUE(registered_sites().empty());
}

TEST_F(FaultTest, ArmSingleSite) {
  Trigger trigger;
  trigger.nth = 1;
  arm("test.armed", trigger);
  EXPECT_TRUE(enabled());
  EXPECT_THROW(HEDRA_FAULT("test.armed"), Injected);
  HEDRA_FAULT("test.unarmed");  // must not fire
}

TEST_F(FaultTest, EmptySpecDisables) {
  configure("test.site=1.0");
  EXPECT_TRUE(enabled());
  configure("");
  EXPECT_FALSE(enabled());
  HEDRA_FAULT("test.site");  // no throw
}

TEST_F(FaultTest, MalformedSpecsThrow) {
  EXPECT_THROW(configure("test.site"), Error);        // no '='
  EXPECT_THROW(configure("test.site=abc"), Error);    // bad rate
  EXPECT_THROW(configure("test.site=@"), Error);      // empty nth
  EXPECT_THROW(configure("test.site=@0x"), Error);    // bad nth
  EXPECT_THROW(configure("=1.0"), Error);             // empty site
  EXPECT_THROW(configure("test.site=1.0!jump"), Error);  // unknown action
  EXPECT_THROW(configure("test.site=-0.5"), Error);   // negative rate
  EXPECT_THROW(configure("test.site=1.5"), Error);    // rate > 1
}

TEST_F(FaultTest, InstallFromEnv) {
  ASSERT_EQ(setenv("HEDRA_FAULTS", "test.env=@1", 1), 0);
  ASSERT_EQ(setenv("HEDRA_FAULT_SEED", "9", 1), 0);
  EXPECT_TRUE(install_from_env());
  EXPECT_TRUE(enabled());
  EXPECT_THROW(HEDRA_FAULT("test.env"), Injected);
  ASSERT_EQ(unsetenv("HEDRA_FAULTS"), 0);
  ASSERT_EQ(unsetenv("HEDRA_FAULT_SEED"), 0);
  clear_registry();
  EXPECT_FALSE(install_from_env());
  EXPECT_FALSE(enabled());
}

TEST_F(FaultTest, StatsEnumerateCounters) {
  configure("test.one=@2");
  HEDRA_FAULT("test.one");
  EXPECT_THROW(HEDRA_FAULT("test.one"), Injected);
  const auto all = stats();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name, "test.one");
  EXPECT_EQ(all[0].hits, 2u);
  EXPECT_EQ(all[0].fired, 1u);
}

}  // namespace
}  // namespace hedra::fault
