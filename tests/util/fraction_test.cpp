#include "util/fraction.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace hedra {
namespace {

TEST(FracTest, DefaultIsZero) {
  const Frac f;
  EXPECT_EQ(f.num(), 0);
  EXPECT_EQ(f.den(), 1);
  EXPECT_TRUE(f.is_integer());
}

TEST(FracTest, IntegerConversionIsImplicit) {
  const Frac f = 7;
  EXPECT_EQ(f.num(), 7);
  EXPECT_EQ(f.den(), 1);
}

TEST(FracTest, NormalisesOnConstruction) {
  const Frac f(6, 4);
  EXPECT_EQ(f.num(), 3);
  EXPECT_EQ(f.den(), 2);
}

TEST(FracTest, NormalisesSignIntoNumerator) {
  const Frac f(3, -6);
  EXPECT_EQ(f.num(), -1);
  EXPECT_EQ(f.den(), 2);
  const Frac g(-3, -6);
  EXPECT_EQ(g.num(), 1);
  EXPECT_EQ(g.den(), 2);
}

TEST(FracTest, ZeroDenominatorThrows) {
  EXPECT_THROW(Frac(1, 0), Error);
}

TEST(FracTest, Addition) {
  EXPECT_EQ(Frac(1, 3) + Frac(2, 3), Frac(1));
  EXPECT_EQ(Frac(1, 2) + Frac(1, 3), Frac(5, 6));
  EXPECT_EQ(Frac(-1, 2) + Frac(1, 2), Frac(0));
}

TEST(FracTest, Subtraction) {
  EXPECT_EQ(Frac(5, 6) - Frac(1, 3), Frac(1, 2));
  EXPECT_EQ(Frac(1, 4) - Frac(1, 2), Frac(-1, 4));
}

TEST(FracTest, Multiplication) {
  EXPECT_EQ(Frac(2, 3) * Frac(3, 4), Frac(1, 2));
  EXPECT_EQ(Frac(-2, 5) * Frac(5, 2), Frac(-1));
}

TEST(FracTest, Division) {
  EXPECT_EQ(Frac(1, 2) / Frac(1, 4), Frac(2));
  EXPECT_THROW(Frac(1) / Frac(0), Error);
}

TEST(FracTest, Negation) {
  EXPECT_EQ(-Frac(3, 7), Frac(-3, 7));
}

TEST(FracTest, Comparison) {
  EXPECT_LT(Frac(1, 3), Frac(1, 2));
  EXPECT_GT(Frac(7, 2), Frac(3));
  EXPECT_LE(Frac(2, 4), Frac(1, 2));
  EXPECT_EQ(Frac(2, 4), Frac(1, 2));
  EXPECT_LT(Frac(-1, 2), Frac(0));
}

TEST(FracTest, FloorAndCeil) {
  EXPECT_EQ(Frac(7, 2).floor(), 3);
  EXPECT_EQ(Frac(7, 2).ceil(), 4);
  EXPECT_EQ(Frac(-7, 2).floor(), -4);
  EXPECT_EQ(Frac(-7, 2).ceil(), -3);
  EXPECT_EQ(Frac(6).floor(), 6);
  EXPECT_EQ(Frac(6).ceil(), 6);
}

TEST(FracTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Frac(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Frac(-3, 4).to_double(), -0.75);
}

TEST(FracTest, ToString) {
  EXPECT_EQ(Frac(7, 2).to_string(), "7/2");
  EXPECT_EQ(Frac(4, 2).to_string(), "2");
  EXPECT_EQ(Frac(-1, 3).to_string(), "-1/3");
}

TEST(FracTest, StreamOutput) {
  std::ostringstream os;
  os << Frac(5, 4);
  EXPECT_EQ(os.str(), "5/4");
}

TEST(FracTest, MinMaxHelpers) {
  EXPECT_EQ(frac_max(Frac(1, 2), Frac(2, 3)), Frac(2, 3));
  EXPECT_EQ(frac_min(Frac(1, 2), Frac(2, 3)), Frac(1, 2));
}

TEST(FracTest, LargeIntermediatesDoNotOverflowWhenResultFits) {
  // (2^40)/3 + (2^40)/3 has a 2^80-scale cross product before reduction.
  const std::int64_t big = std::int64_t{1} << 40;
  const Frac f(big, 3);
  EXPECT_EQ(f + f, Frac(2 * big, 3));
}

TEST(FracTest, OverflowIsDetected) {
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max();
  const Frac f(huge, 1);
  EXPECT_THROW(f * Frac(2), Error);
  EXPECT_THROW(f + f, Error);
}

// --- INT64_MIN edge cases -------------------------------------------------
// |INT64_MIN| is not representable as int64, so every code path that used
// to negate blindly (`den < 0` sign normalisation, unary minus, operator-)
// was undefined behaviour exactly there.  These pin the fixed semantics:
// representable results are exact, unrepresentable ones throw.

TEST(FracTest, Int64MinNumeratorIsRepresentable) {
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  const Frac f(min, 1);
  EXPECT_EQ(f.num(), min);
  EXPECT_EQ(f.den(), 1);
  EXPECT_EQ(f.floor(), min);
  EXPECT_EQ(f.ceil(), min);
}

TEST(FracTest, Int64MinReducesAgainstEvenDenominators) {
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  // gcd(2^63, 2) = 2; the old signed-abs gcd negated INT64_MIN first (UB).
  const Frac f(min, 2);
  EXPECT_EQ(f.num(), min / 2);
  EXPECT_EQ(f.den(), 1);
}

TEST(FracTest, Int64MinOverInt64MinIsOne) {
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  // g = 2^63 does not even fit int64; reduction must run on magnitudes.
  const Frac f(min, min);
  EXPECT_EQ(f, Frac(1));
}

TEST(FracTest, Int64MinDenominatorThrowsWhenIrreducible) {
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  // 1/INT64_MIN would need den = 2^63 > INT64_MAX: genuinely
  // unrepresentable, so the constructor must throw, not wrap.
  EXPECT_THROW(Frac(1, min), Error);
  // With a shared factor the value fits: -3/2^62.
  const Frac ok(6, min);
  EXPECT_EQ(ok.num(), -3);
  EXPECT_EQ(ok.den(), std::int64_t{1} << 62);
}

TEST(FracTest, NegatingInt64MinThrows) {
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  const Frac f(min, 1);
  EXPECT_THROW(-f, Error);
  EXPECT_THROW(Frac(0) - f, Error);
  // The boundary neighbour negates fine.
  const Frac g(min + 1, 1);
  EXPECT_EQ((-g).num(), std::numeric_limits<std::int64_t>::max());
}

TEST(FracTest, Int64MinSurvivesMultiplyCrossReduction) {
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  // Cross-reduction gcd(|INT64_MIN|, 4) must use the unsigned magnitude.
  EXPECT_EQ(Frac(min, 1) * Frac(1, 4), Frac(min / 4, 1));
  EXPECT_EQ(Frac(min, 1) / Frac(4, 1), Frac(min / 4, 1));
}

TEST(FracTest, Int64MinSpecStringFallsBackToRatioForm) {
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  // den = 5 survives normalisation (2^63 is odd-free of 5s); the decimal
  // expansion would scale the numerator past INT64_MAX, so the exact
  // ratio spelling is used — previously this path negated INT64_MIN (UB).
  const Frac f(min, 5);
  EXPECT_EQ(frac_spec_string(f), f.to_string());
}

/// The shape every bound in the paper takes: len + (vol - len)/m must be
/// exactly representable and ordered sensibly for all m.
class FracBoundShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(FracBoundShapeTest, GrahamBoundShape) {
  const int m = GetParam();
  const std::int64_t len = 37;
  const std::int64_t vol = 1234;
  const Frac bound = Frac(len) + Frac(vol - len, m);
  EXPECT_GE(bound, Frac(len));
  EXPECT_LE(bound, Frac(vol));
  // Exactness: multiplying back by m recovers the numerator identity.
  EXPECT_EQ(bound * Frac(m), Frac(len * (m - 1) + vol));
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, FracBoundShapeTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

TEST(FracSpecTest, ParsesIntegersDecimalsAndRatios) {
  EXPECT_EQ(parse_frac("3"), Frac(3));
  EXPECT_EQ(parse_frac("-2"), Frac(-2));
  EXPECT_EQ(parse_frac("+4"), Frac(4));
  EXPECT_EQ(parse_frac("1.5"), Frac(3, 2));
  EXPECT_EQ(parse_frac("3.0"), Frac(3));
  EXPECT_EQ(parse_frac("0.25"), Frac(1, 4));
  EXPECT_EQ(parse_frac("-0.5"), Frac(-1, 2));
  EXPECT_EQ(parse_frac(".5"), Frac(1, 2));
  EXPECT_EQ(parse_frac("7/3"), Frac(7, 3));
  EXPECT_EQ(parse_frac("-7/3"), Frac(-7, 3));
  EXPECT_EQ(parse_frac("6/4"), Frac(3, 2));  // normalised
}

TEST(FracSpecTest, RejectsMalformedInput) {
  for (const char* bad : {"", "x", "1.2.3", "1/0", "1/2/3", "1.5/2", "--1",
                          "1.", "1e3", " 2", "0.123456789012345678901"}) {
    EXPECT_THROW((void)parse_frac(bad), Error) << bad;
  }
}

TEST(FracSpecTest, RejectsOverflowingNumerals) {
  // Numerals past int64 must throw, not silently wrap (they previously
  // overflowed to an arbitrary value — e.g. 2^64+1 parsed as 1).
  for (const char* bad : {"18446744073709551617", "9223372036854775808",
                          "-9223372036854775808000", "10.000000000000000001",
                          "9223372036854775807/9999999999999999999"}) {
    EXPECT_THROW((void)parse_frac(bad), Error) << bad;
  }
  // The extremes that do fit still parse.
  EXPECT_EQ(parse_frac("9223372036854775807"),
            Frac(std::numeric_limits<std::int64_t>::max()));
}

TEST(FracSpecTest, HugeDecimalDenominatorsFallBackToRatioForm) {
  // 10^places would overflow int64 for 2^a·5^b denominators with
  // max(a, b) > 18; the exact ratio form is the spelling then.
  const Frac tiny(1, std::int64_t(1) << 40);
  EXPECT_EQ(frac_spec_string(tiny), tiny.to_string());
  EXPECT_EQ(parse_frac(frac_spec_string(tiny)), tiny);
  // And a scaled numerator that would overflow also falls back.  (max − 2
  // is odd, so the half survives normalisation as a genuine /2 rational.)
  const Frac wide(std::numeric_limits<std::int64_t>::max() - 2, 2);
  EXPECT_EQ(frac_spec_string(wide), wide.to_string());
  EXPECT_EQ(parse_frac(frac_spec_string(wide)), wide);
}

TEST(FracSpecTest, SpecStringIsShortestExactForm) {
  EXPECT_EQ(frac_spec_string(Frac(3)), "3");
  EXPECT_EQ(frac_spec_string(Frac(-2)), "-2");
  EXPECT_EQ(frac_spec_string(Frac(3, 2)), "1.5");
  EXPECT_EQ(frac_spec_string(Frac(1, 4)), "0.25");
  EXPECT_EQ(frac_spec_string(Frac(-1, 2)), "-0.5");
  EXPECT_EQ(frac_spec_string(Frac(1, 8)), "0.125");
  EXPECT_EQ(frac_spec_string(Frac(1, 20)), "0.05");
  // Non-decimal denominators fall back to the ratio form.
  EXPECT_EQ(frac_spec_string(Frac(7, 3)), "7/3");
  EXPECT_EQ(frac_spec_string(Frac(1, 7)), "1/7");
}

TEST(FracSpecTest, RoundTripsExactly) {
  const std::vector<Frac> values{Frac(1),     Frac(42),    Frac(-3),
                                 Frac(3, 2),  Frac(1, 4),  Frac(7, 3),
                                 Frac(-9, 8), Frac(13, 5), Frac(1, 1000)};
  for (const Frac& value : values) {
    EXPECT_EQ(parse_frac(frac_spec_string(value)), value)
        << frac_spec_string(value);
  }
}

}  // namespace
}  // namespace hedra
