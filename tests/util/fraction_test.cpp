#include "util/fraction.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/error.h"

namespace hedra {
namespace {

TEST(FracTest, DefaultIsZero) {
  const Frac f;
  EXPECT_EQ(f.num(), 0);
  EXPECT_EQ(f.den(), 1);
  EXPECT_TRUE(f.is_integer());
}

TEST(FracTest, IntegerConversionIsImplicit) {
  const Frac f = 7;
  EXPECT_EQ(f.num(), 7);
  EXPECT_EQ(f.den(), 1);
}

TEST(FracTest, NormalisesOnConstruction) {
  const Frac f(6, 4);
  EXPECT_EQ(f.num(), 3);
  EXPECT_EQ(f.den(), 2);
}

TEST(FracTest, NormalisesSignIntoNumerator) {
  const Frac f(3, -6);
  EXPECT_EQ(f.num(), -1);
  EXPECT_EQ(f.den(), 2);
  const Frac g(-3, -6);
  EXPECT_EQ(g.num(), 1);
  EXPECT_EQ(g.den(), 2);
}

TEST(FracTest, ZeroDenominatorThrows) {
  EXPECT_THROW(Frac(1, 0), Error);
}

TEST(FracTest, Addition) {
  EXPECT_EQ(Frac(1, 3) + Frac(2, 3), Frac(1));
  EXPECT_EQ(Frac(1, 2) + Frac(1, 3), Frac(5, 6));
  EXPECT_EQ(Frac(-1, 2) + Frac(1, 2), Frac(0));
}

TEST(FracTest, Subtraction) {
  EXPECT_EQ(Frac(5, 6) - Frac(1, 3), Frac(1, 2));
  EXPECT_EQ(Frac(1, 4) - Frac(1, 2), Frac(-1, 4));
}

TEST(FracTest, Multiplication) {
  EXPECT_EQ(Frac(2, 3) * Frac(3, 4), Frac(1, 2));
  EXPECT_EQ(Frac(-2, 5) * Frac(5, 2), Frac(-1));
}

TEST(FracTest, Division) {
  EXPECT_EQ(Frac(1, 2) / Frac(1, 4), Frac(2));
  EXPECT_THROW(Frac(1) / Frac(0), Error);
}

TEST(FracTest, Negation) {
  EXPECT_EQ(-Frac(3, 7), Frac(-3, 7));
}

TEST(FracTest, Comparison) {
  EXPECT_LT(Frac(1, 3), Frac(1, 2));
  EXPECT_GT(Frac(7, 2), Frac(3));
  EXPECT_LE(Frac(2, 4), Frac(1, 2));
  EXPECT_EQ(Frac(2, 4), Frac(1, 2));
  EXPECT_LT(Frac(-1, 2), Frac(0));
}

TEST(FracTest, FloorAndCeil) {
  EXPECT_EQ(Frac(7, 2).floor(), 3);
  EXPECT_EQ(Frac(7, 2).ceil(), 4);
  EXPECT_EQ(Frac(-7, 2).floor(), -4);
  EXPECT_EQ(Frac(-7, 2).ceil(), -3);
  EXPECT_EQ(Frac(6).floor(), 6);
  EXPECT_EQ(Frac(6).ceil(), 6);
}

TEST(FracTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Frac(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Frac(-3, 4).to_double(), -0.75);
}

TEST(FracTest, ToString) {
  EXPECT_EQ(Frac(7, 2).to_string(), "7/2");
  EXPECT_EQ(Frac(4, 2).to_string(), "2");
  EXPECT_EQ(Frac(-1, 3).to_string(), "-1/3");
}

TEST(FracTest, StreamOutput) {
  std::ostringstream os;
  os << Frac(5, 4);
  EXPECT_EQ(os.str(), "5/4");
}

TEST(FracTest, MinMaxHelpers) {
  EXPECT_EQ(frac_max(Frac(1, 2), Frac(2, 3)), Frac(2, 3));
  EXPECT_EQ(frac_min(Frac(1, 2), Frac(2, 3)), Frac(1, 2));
}

TEST(FracTest, LargeIntermediatesDoNotOverflowWhenResultFits) {
  // (2^40)/3 + (2^40)/3 has a 2^80-scale cross product before reduction.
  const std::int64_t big = std::int64_t{1} << 40;
  const Frac f(big, 3);
  EXPECT_EQ(f + f, Frac(2 * big, 3));
}

TEST(FracTest, OverflowIsDetected) {
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max();
  const Frac f(huge, 1);
  EXPECT_THROW(f * Frac(2), Error);
  EXPECT_THROW(f + f, Error);
}

/// The shape every bound in the paper takes: len + (vol - len)/m must be
/// exactly representable and ordered sensibly for all m.
class FracBoundShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(FracBoundShapeTest, GrahamBoundShape) {
  const int m = GetParam();
  const std::int64_t len = 37;
  const std::int64_t vol = 1234;
  const Frac bound = Frac(len) + Frac(vol - len, m);
  EXPECT_GE(bound, Frac(len));
  EXPECT_LE(bound, Frac(vol));
  // Exactness: multiplying back by m recovers the numerator identity.
  EXPECT_EQ(bound * Frac(m), Frac(len * (m - 1) + vol));
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, FracBoundShapeTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

}  // namespace
}  // namespace hedra
