#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/error.h"

namespace hedra {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng rng(0);
  EXPECT_NE(rng.next_u64(), 0u);  // SplitMix64 avoids the all-zero state
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntHitsAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, UniformIntRejectsEmptyRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(2, 1), Error);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 100);  // within 10% of expectation
  }
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), Error);
  EXPECT_THROW(rng.bernoulli(-0.1), Error);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(37);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(RngTest, IndexRequiresNonEmpty) {
  Rng rng(41);
  EXPECT_THROW(rng.index(0), Error);
  EXPECT_EQ(rng.index(1), 0u);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyShuffles) {
  Rng rng(47);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(51);
  Rng child = parent.fork();
  // The child stream is not the parent's continuation.
  Rng parent2(51);
  (void)parent2.fork();
  Rng reference(51);
  Rng ref_child = reference.fork();
  // Deterministic: same parent seed -> same child stream.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child.next_u64(), ref_child.next_u64());
}

TEST(RngTest, ForkedChildrenDiffer) {
  Rng parent(53);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace hedra
