#include "util/work_stealing_deque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace hedra {
namespace {

TEST(WorkStealingDequeTest, OwnerEndIsLifo) {
  WorkStealingDeque<int> deque;
  deque.push_bottom(1);
  deque.push_bottom(2);
  deque.push_bottom(3);
  int out = 0;
  ASSERT_TRUE(deque.pop_bottom(out));
  EXPECT_EQ(out, 3);
  ASSERT_TRUE(deque.pop_bottom(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(deque.pop_bottom(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(deque.pop_bottom(out));
}

TEST(WorkStealingDequeTest, ThiefEndIsFifo) {
  WorkStealingDeque<int> deque;
  deque.push_bottom(1);
  deque.push_bottom(2);
  deque.push_bottom(3);
  int out = 0;
  ASSERT_TRUE(deque.steal_top(out));
  EXPECT_EQ(out, 1);  // the oldest (shallowest) task
  ASSERT_TRUE(deque.pop_bottom(out));
  EXPECT_EQ(out, 3);  // the owner keeps its most recent work
  ASSERT_TRUE(deque.steal_top(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(deque.steal_top(out));
  EXPECT_TRUE(deque.empty());
}

TEST(WorkStealingDequeTest, SizeTracksBothEnds) {
  WorkStealingDeque<int> deque;
  EXPECT_EQ(deque.size(), 0u);
  deque.push_bottom(7);
  deque.push_bottom(8);
  EXPECT_EQ(deque.size(), 2u);
  int out = 0;
  ASSERT_TRUE(deque.steal_top(out));
  EXPECT_EQ(deque.size(), 1u);
}

TEST(WorkStealingDequeTest, MoveOnlyPayload) {
  WorkStealingDeque<std::unique_ptr<int>> deque;
  deque.push_bottom(std::make_unique<int>(42));
  std::unique_ptr<int> out;
  ASSERT_TRUE(deque.pop_bottom(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(WorkStealingDequeTest, ConcurrentOwnerAndThievesDrainEverything) {
  // One owner pushes and pops while three thieves steal: every pushed value
  // must be consumed exactly once.  Run under the ASan and TSan jobs.
  constexpr int kItems = 20000;
  WorkStealingDeque<int> deque;
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      int out = 0;
      while (!done.load() || !deque.empty()) {
        if (deque.steal_top(out)) {
          consumed_sum.fetch_add(out);
          consumed_count.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  long long pushed_sum = 0;
  for (int i = 1; i <= kItems; ++i) {
    deque.push_bottom(i);
    pushed_sum += i;
    int out = 0;
    if (i % 3 == 0 && deque.pop_bottom(out)) {
      consumed_sum.fetch_add(out);
      consumed_count.fetch_add(1);
    }
  }
  done.store(true);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed_count.load(), kItems);
  EXPECT_EQ(consumed_sum.load(), pushed_sum);
}

}  // namespace
}  // namespace hedra
