#include "util/cli.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace hedra {
namespace {

TEST(CliTest, DefaultsSurviveEmptyArgv) {
  ArgParser parser("prog", "test");
  const auto* n = parser.add_int("n", 42, "count");
  const auto* r = parser.add_real("ratio", 0.5, "ratio");
  const auto* f = parser.add_flag("verbose", "flag");
  const auto* s = parser.add_string("out", "a.csv", "path");
  const char* argv[] = {"prog"};
  EXPECT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(*n, 42);
  EXPECT_DOUBLE_EQ(*r, 0.5);
  EXPECT_FALSE(*f);
  EXPECT_EQ(*s, "a.csv");
}

TEST(CliTest, ParsesSpaceSeparatedValues) {
  ArgParser parser("prog", "test");
  const auto* n = parser.add_int("n", 0, "count");
  const char* argv[] = {"prog", "--n", "17"};
  EXPECT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(*n, 17);
}

TEST(CliTest, ParsesEqualsValues) {
  ArgParser parser("prog", "test");
  const auto* r = parser.add_real("ratio", 0.0, "ratio");
  const char* argv[] = {"prog", "--ratio=0.25"};
  EXPECT_TRUE(parser.parse(2, argv));
  EXPECT_DOUBLE_EQ(*r, 0.25);
}

TEST(CliTest, FlagsNeedNoValue) {
  ArgParser parser("prog", "test");
  const auto* f = parser.add_flag("quick", "flag");
  const char* argv[] = {"prog", "--quick"};
  EXPECT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(*f);
}

TEST(CliTest, UnknownOptionThrows) {
  ArgParser parser("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(parser.parse(2, argv), Error);
}

TEST(CliTest, MissingValueThrows) {
  ArgParser parser("prog", "test");
  parser.add_int("n", 0, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(parser.parse(2, argv), Error);
}

TEST(CliTest, MalformedIntThrows) {
  ArgParser parser("prog", "test");
  parser.add_int("n", 0, "count");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_THROW(parser.parse(3, argv), Error);
}

TEST(CliTest, PositionalArgumentsRejected) {
  ArgParser parser("prog", "test");
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(parser.parse(2, argv), Error);
}

TEST(CliTest, HelpReturnsFalse) {
  ArgParser parser("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(CliTest, DuplicateOptionRegistrationThrows) {
  ArgParser parser("prog", "test");
  parser.add_int("n", 0, "count");
  EXPECT_THROW(parser.add_real("n", 0.0, "again"), Error);
}

TEST(CliTest, UsageMentionsOptionsAndDefaults) {
  ArgParser parser("prog", "summary text");
  parser.add_int("dags", 100, "number of DAGs");
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--dags"), std::string::npos);
  EXPECT_NE(usage.find("100"), std::string::npos);
  EXPECT_NE(usage.find("summary text"), std::string::npos);
}

}  // namespace
}  // namespace hedra
