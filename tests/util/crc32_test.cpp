#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace hedra::util {
namespace {

TEST(Crc32Test, StandardCheckValue) {
  // The CRC-32/IEEE "check" value every implementation must agree on.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
  EXPECT_EQ(crc32(std::string(32, '\0')), 0x190A55ADu);
}

TEST(Crc32Test, ChainingEqualsOneShot) {
  const std::string message = "the journal frame payload";
  for (std::size_t cut = 0; cut <= message.size(); ++cut) {
    const std::uint32_t first = crc32(message.substr(0, cut));
    const std::uint32_t chained = crc32(message.substr(cut), first);
    EXPECT_EQ(chained, crc32(message)) << "cut at " << cut;
  }
}

TEST(Crc32Test, SingleBitFlipAlwaysDetected) {
  const std::string message = "ADMIT tau1 period 100 deadline 100";
  const std::uint32_t good = crc32(message);
  for (std::size_t i = 0; i < message.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = message;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      EXPECT_NE(crc32(corrupt), good) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32Test, PointerOverloadMatchesStringView) {
  const std::string message = "same bytes";
  EXPECT_EQ(crc32(message.data(), message.size()),
            crc32(std::string_view(message)));
}

}  // namespace
}  // namespace hedra::util
