#include "util/strings.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace hedra {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("node v1", "node"));
  EXPECT_FALSE(starts_with("edge", "node"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(StringsTest, FormatPercent) {
  EXPECT_EQ(format_percent(12.34, 1), "+12.3%");
  EXPECT_EQ(format_percent(-4.56, 1), "-4.6%");
  EXPECT_EQ(format_percent(0.0, 1), "+0.0%");
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("  -17 "), -17);
  EXPECT_THROW(parse_int("12x"), Error);
  EXPECT_THROW(parse_int(""), Error);
  EXPECT_THROW(parse_int("3.5"), Error);
}

TEST(StringsTest, ParseReal) {
  EXPECT_DOUBLE_EQ(parse_real("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_real(" -1e3 "), -1000.0);
  EXPECT_THROW(parse_real("abc"), Error);
  EXPECT_THROW(parse_real(""), Error);
  EXPECT_THROW(parse_real("1.2.3"), Error);
}

}  // namespace
}  // namespace hedra
