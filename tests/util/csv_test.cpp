#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hedra {
namespace {

TEST(CsvTest, PlainRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvTest, QuotesFieldsWithSeparator) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a,b", "c"});
  EXPECT_EQ(os.str(), "\"a,b\",c\n");
}

TEST(CsvTest, EscapesQuotes) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"say \"hi\""});
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvTest, QuotesNewlines) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"two\nlines", "x"});
  EXPECT_EQ(os.str(), "\"two\nlines\",x\n");
}

TEST(CsvTest, CustomSeparator) {
  std::ostringstream os;
  CsvWriter csv(os, ';');
  csv.row({"a;b", "c"});
  EXPECT_EQ(os.str(), "\"a;b\";c\n");
}

TEST(CsvTest, CellsMixedTypes) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.cells("label", 42, 0.5);
  const std::string line = os.str();
  EXPECT_TRUE(line.find("label,42,") == 0) << line;
}

TEST(CsvTest, EmptyRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row(std::vector<std::string>{});
  EXPECT_EQ(os.str(), "\n");
}

}  // namespace
}  // namespace hedra
