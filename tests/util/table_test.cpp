#include "util/table.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace hedra {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TableTest, ColumnsAreAligned) {
  TextTable table({"x", "y"});
  table.add_row({"short", "1"});
  table.add_row({"much-longer-cell", "2"});
  const std::string out = table.render();
  // Every data line has the same length.
  std::size_t expected = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (expected == 0) expected = len;
    EXPECT_EQ(len, expected);
    start = end + 1;
  }
}

TEST(TableTest, ArityMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable(std::vector<std::string>{}), Error);
}

TEST(TableTest, AlignmentArityMismatchThrows) {
  EXPECT_THROW(TextTable({"a", "b"}, {Align::kLeft}), Error);
}

TEST(TableTest, SeparatorRows) {
  TextTable table({"a"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.render();
  // header rule + separator + top/bottom rules = at least 4 dashed lines
  int rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_GE(rules, 4);
}

TEST(TableTest, LeftAndRightAlignment) {
  TextTable table({"l", "r"}, {Align::kLeft, Align::kRight});
  table.add_row({"a", "b"});
  table.add_row({"aa", "bb"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| a  |"), std::string::npos) << out;
  EXPECT_NE(out.find("|  b |"), std::string::npos) << out;
}

}  // namespace
}  // namespace hedra
