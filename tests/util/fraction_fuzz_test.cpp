#include <gtest/gtest.h>

#include <cmath>

#include "util/fraction.h"
#include "util/rng.h"

/// Randomised algebraic checks for Frac.  Every response-time comparison in
/// the library runs through this class, so field axioms and agreement with
/// floating point (within rounding) are exercised across thousands of
/// random operand pairs.

namespace hedra {
namespace {

Frac random_frac(Rng& rng) {
  // Numerators/denominators sized so products stay well inside int64.
  const std::int64_t num = rng.uniform_int(-1000000, 1000000);
  const std::int64_t den = rng.uniform_int(1, 1000000);
  return Frac(num, den);
}

class FracFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FracFuzz, FieldAxioms) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Frac a = random_frac(rng);
    const Frac b = random_frac(rng);
    const Frac c = random_frac(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Frac(0), a);
    EXPECT_EQ(a * Frac(1), a);
    EXPECT_EQ(a - a, Frac(0));
    if (b != Frac(0)) {
      EXPECT_EQ(a * b / b, a);
    }
  }
}

TEST_P(FracFuzz, AgreesWithDoubleWithinRounding) {
  Rng rng(GetParam() + 10);
  for (int i = 0; i < 2000; ++i) {
    const Frac a = random_frac(rng);
    const Frac b = random_frac(rng);
    const double expected = a.to_double() + b.to_double();
    EXPECT_NEAR((a + b).to_double(), expected,
                1e-9 * (1.0 + std::fabs(expected)));
  }
}

TEST_P(FracFuzz, OrderingIsTotalAndConsistent) {
  Rng rng(GetParam() + 20);
  for (int i = 0; i < 2000; ++i) {
    const Frac a = random_frac(rng);
    const Frac b = random_frac(rng);
    const bool lt = a < b;
    const bool gt = a > b;
    const bool eq = a == b;
    EXPECT_EQ(static_cast<int>(lt) + static_cast<int>(gt) +
                  static_cast<int>(eq),
              1);
    if (lt) EXPECT_LT(a.to_double(), b.to_double() + 1e-9);
    // Translation invariance: a < b  <=>  a + c < b + c.
    const Frac c = random_frac(rng);
    EXPECT_EQ(a < b, a + c < b + c);
  }
}

TEST_P(FracFuzz, FloorCeilBracketValue) {
  Rng rng(GetParam() + 30);
  for (int i = 0; i < 2000; ++i) {
    const Frac a = random_frac(rng);
    EXPECT_LE(Frac(a.floor()), a);
    EXPECT_GE(Frac(a.ceil()), a);
    EXPECT_LE(a.ceil() - a.floor(), 1);
  }
}

TEST_P(FracFuzz, StringRoundTripViaParts) {
  Rng rng(GetParam() + 40);
  for (int i = 0; i < 500; ++i) {
    const Frac a = random_frac(rng);
    const Frac rebuilt(a.num(), a.den());
    EXPECT_EQ(rebuilt, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FracFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace hedra
