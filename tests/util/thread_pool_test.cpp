#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "util/error.h"

namespace hedra {
namespace {

TEST(ThreadPoolTest, RejectsNonPositiveWorkerCount) {
  EXPECT_THROW(ThreadPool(0), Error);
  EXPECT_THROW(ThreadPool(-3), Error);
}

TEST(ThreadPoolTest, DefaultWorkersIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_workers(), 1);
}

TEST(ThreadPoolTest, EmptyInputIsANoOp) {
  for (const int workers : {1, 4}) {
    ThreadPool pool(workers);
    std::atomic<int> calls{0};
    pool.parallel_for_each(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST(ThreadPoolTest, RunsEveryItemExactlyOnce) {
  // Far more tasks than workers: the atomic cursor must hand out each index
  // exactly once.
  constexpr std::size_t kItems = 10000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kItems);
  pool.parallel_for_each(kItems, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, MoreWorkersThanTasks) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for_each(3, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out = pool.parallel_map<std::size_t>(
      1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, PropagatesExceptionFromSerialPool) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for_each(
                   5, [](std::size_t i) {
                     if (i == 3) throw Error("boom at 3");
                   }),
               Error);
}

TEST(ThreadPoolTest, PropagatesSmallestIndexExceptionFromWorkers) {
  ThreadPool pool(4);
  try {
    pool.parallel_for_each(100, [](std::size_t i) {
      if (i % 10 == 7) throw Error("boom at " + std::to_string(i));
    });
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom at 7");
  }
}

TEST(ThreadPoolTest, AllItemsStillRunWhenOneThrows) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  EXPECT_THROW(pool.parallel_for_each(50,
                                      [&](std::size_t i) {
                                        ++hits[i];
                                        if (i == 0) throw Error("first");
                                      }),
               Error);
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 50);
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_each(10, [](std::size_t) { throw Error("once"); }),
      Error);
  std::atomic<int> sum{0};
  pool.parallel_for_each(10, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, NestedCallRunsInline) {
  // A parallel_for_each issued from inside an item must run inline on that
  // worker instead of deadlocking the dispatch protocol (the regression the
  // parallel B&B needs to run under Runner::sweep --jobs N).
  ThreadPool pool(4);
  std::atomic<int> inner{0};
  pool.parallel_for_each(8, [&](std::size_t) {
    pool.parallel_for_each(16, [&](std::size_t) { ++inner; });
  });
  EXPECT_EQ(inner.load(), 8 * 16);
}

TEST(ThreadPoolTest, NestedCallOnASecondPoolRunsInline) {
  // Cross-pool nesting would oversubscribe the machine; it runs inline too.
  ThreadPool outer(4);
  ThreadPool other(4);
  std::atomic<int> inner{0};
  outer.parallel_for_each(6, [&](std::size_t) {
    other.parallel_for_each(10, [&](std::size_t) { ++inner; });
  });
  EXPECT_EQ(inner.load(), 60);
}

TEST(ThreadPoolTest, DoublyNestedCallRunsInline) {
  ThreadPool pool(3);
  std::atomic<int> inner{0};
  pool.parallel_for_each(4, [&](std::size_t) {
    pool.parallel_for_each(4, [&](std::size_t) {
      pool.parallel_for_each(4, [&](std::size_t) { ++inner; });
    });
  });
  EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPoolTest, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(4);
  try {
    pool.parallel_for_each(4, [&](std::size_t) {
      pool.parallel_for_each(4, [](std::size_t j) {
        if (j == 2) throw Error("nested boom");
      });
    });
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "nested boom");
  }
}

TEST(ThreadPoolTest, ManySmallBatchesBackToBack) {
  // Exercises the job hand-off path: successive parallel_for_each calls on
  // one pool must not deadlock or leak items between jobs.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> calls{0};
    pool.parallel_for_each(5, [&](std::size_t) { ++calls; });
    ASSERT_EQ(calls.load(), 5) << "round " << round;
  }
}

}  // namespace
}  // namespace hedra
