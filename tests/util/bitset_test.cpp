#include "util/bitset.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace hedra {
namespace {

TEST(BitsetTest, StartsEmpty) {
  const DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(BitsetTest, SetResetTest) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(BitsetTest, OutOfRangeThrows) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), Error);
  EXPECT_THROW(b.test(10), Error);
  EXPECT_THROW(b.reset(10), Error);
}

TEST(BitsetTest, UnionAndIntersection) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  a.set(1);
  a.set(3);
  b.set(3);
  b.set(5);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.to_indices(), (std::vector<std::size_t>{1, 3, 5}));
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.to_indices(), (std::vector<std::size_t>{3}));
}

TEST(BitsetTest, SizeMismatchThrows) {
  DynamicBitset a(10);
  DynamicBitset b(11);
  EXPECT_THROW(a |= b, Error);
  EXPECT_THROW(a &= b, Error);
}

TEST(BitsetTest, ToIndicesAscendingAcrossWords) {
  DynamicBitset b(130);
  b.set(129);
  b.set(2);
  b.set(64);
  EXPECT_EQ(b.to_indices(), (std::vector<std::size_t>{2, 64, 129}));
}

TEST(BitsetTest, Equality) {
  DynamicBitset a(20);
  DynamicBitset b(20);
  EXPECT_EQ(a, b);
  a.set(7);
  EXPECT_NE(a, b);
  b.set(7);
  EXPECT_EQ(a, b);
}

TEST(BitsetTest, EmptyBitset) {
  const DynamicBitset b(0);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_TRUE(b.to_indices().empty());
}

}  // namespace
}  // namespace hedra
