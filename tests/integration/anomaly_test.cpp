#include <gtest/gtest.h>

#include "analysis/analysis_cache.h"
#include "analysis/rta_heterogeneous.h"
#include "common/fixtures.h"
#include "graph/dag_io.h"
#include "gen/hierarchical.h"
#include "gen/offload.h"
#include "sim/scheduler.h"
#include "util/rng.h"

/// Timing-anomaly sweep.  WCETs are upper bounds: at run time nodes finish
/// early, and on non-preemptive multiprocessors that can *lengthen* the
/// schedule (Graham's anomalies).  The paper's bounds are computed from
/// WCETs, so they must dominate every execution in which each node runs for
/// at most its WCET — under every work-conserving policy.  This is the
/// guarantee a certification argument actually needs.
///
/// Every draw × policy run of a sweep simulates the SAME frozen graph, so
/// the sweeps batch their simulate_with_times calls over one
/// AnalysisCache CSR snapshot per DAG instead of re-snapshotting per call
/// (15 snapshots per DAG before; measured by the sim_with_times_batch
/// kernel of bench/perf_report).

namespace hedra {
namespace {

const std::vector<sim::Policy> kPolicies{
    sim::Policy::kBreadthFirst, sim::Policy::kDepthFirst,
    sim::Policy::kCriticalPathFirst, sim::Policy::kIndexOrder,
    sim::Policy::kRandom};

class AnomalySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnomalySweep, EarlyCompletionNeverBreaksRhom) {
  Rng master(GetParam());
  gen::HierarchicalParams params;
  params.max_depth = 4;
  params.n_par = 5;
  params.min_nodes = 10;
  params.max_nodes = 60;
  params.wcet_max = 40;
  for (int i = 0; i < 8; ++i) {
    Rng rng = master.fork();
    graph::Dag dag = gen::generate_hierarchical(params, rng);
    (void)gen::select_offload_node(dag, rng);
    (void)gen::set_offload_ratio(dag, 0.05 + 0.5 * rng.uniform_real());
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    analysis::AnalysisCache cache(dag);
    const Frac r_hom = cache.r_hom(m);
    for (int draw = 0; draw < 3; ++draw) {
      const auto actual = sim::random_actual_times(dag, 0.2, rng);
      for (const auto policy : kPolicies) {
        sim::SimConfig config;
        config.cores = m;
        config.policy = policy;
        const auto trace =
            sim::simulate_with_times(cache.flat(), config, actual);
        EXPECT_LE(Frac(trace.makespan()), r_hom)
            << "m=" << m << " policy=" << sim::to_string(policy);
      }
    }
  }
}

TEST_P(AnomalySweep, EarlyCompletionNeverBreaksRhet) {
  Rng master(GetParam() + 7777);
  gen::HierarchicalParams params;
  params.max_depth = 4;
  params.n_par = 5;
  params.min_nodes = 10;
  params.max_nodes = 60;
  params.wcet_max = 40;
  for (int i = 0; i < 8; ++i) {
    Rng rng = master.fork();
    graph::Dag dag = gen::generate_hierarchical(params, rng);
    (void)gen::select_offload_node(dag, rng);
    (void)gen::set_offload_ratio(dag, 0.05 + 0.5 * rng.uniform_real());
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    analysis::AnalysisCache cache(dag);
    const Frac r_het = cache.r_het(m);
    for (int draw = 0; draw < 3; ++draw) {
      const auto actual =
          sim::random_actual_times(cache.transformed(), 0.2, rng);
      for (const auto policy : kPolicies) {
        sim::SimConfig config;
        config.cores = m;
        config.policy = policy;
        const auto trace =
            sim::simulate_with_times(cache.flat_transformed(), config, actual);
        EXPECT_LE(Frac(trace.makespan()), r_het)
            << "m=" << m << " policy=" << sim::to_string(policy)
            << " scenario=" << to_string(cache.scenario(m));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnomalySweep,
                         ::testing::Values(21, 42, 63, 84));

TEST(AnomalyTest, AnomaliesActuallyExist) {
  // A concrete Graham anomaly (found by randomised search, frozen here):
  // on m = 3 under the depth-first policy, running every node at its WCET
  // takes 59 ticks, but the early-completion vector below takes 60.  This
  // proves the sweep above exercises a real phenomenon — bounds computed
  // from WCETs cannot rely on "shorter is always better".
  const graph::Dag dag = graph::read_dag_text(
      "node v1 8\nnode v2 3\nnode v3 7\nnode v4 7\nnode v5 10\n"
      "node v6 10\nnode v7 9\nnode v8 5\nnode v9 5\nnode v10 7\n"
      "node v11 2\nnode v12 1\nnode v13 8\nnode v14 9\nnode v15 9\n"
      "node v16 4\nnode v17 4\nnode v18 8\nnode v19 4\nnode v20 2\n"
      "node v21 7\n"
      "edge v1 v3\nedge v1 v21\nedge v3 v5\nedge v3 v9\nedge v3 v10\n"
      "edge v3 v15\nedge v4 v2\nedge v5 v7\nedge v5 v8\nedge v6 v4\n"
      "edge v7 v6\nedge v8 v6\nedge v9 v4\nedge v10 v12\nedge v10 v13\n"
      "edge v10 v14\nedge v11 v4\nedge v12 v11\nedge v13 v11\n"
      "edge v14 v11\nedge v15 v17\nedge v15 v18\nedge v15 v19\n"
      "edge v15 v20\nedge v16 v4\nedge v17 v16\nedge v18 v16\n"
      "edge v19 v16\nedge v20 v16\nedge v21 v2\n");
  const std::vector<graph::Time> actual{8, 2, 7, 4, 8, 10, 7, 4, 5, 5, 2,
                                        1, 4, 5, 8, 3, 4,  6, 2, 1, 4};
  sim::SimConfig config;
  config.cores = 3;
  config.policy = sim::Policy::kDepthFirst;
  const graph::Time at_wcet = sim::simulated_makespan(dag, config);
  const auto trace = sim::simulate_with_times(dag, config, actual);
  EXPECT_EQ(at_wcet, 59);
  EXPECT_EQ(trace.makespan(), 60);
  EXPECT_GT(trace.makespan(), at_wcet) << "the frozen anomaly disappeared";
  // And, of course, the bound still holds.
  EXPECT_LE(Frac(trace.makespan()), analysis::rta_homogeneous(dag, 3));
}

TEST(AnomalyTest, ActualTimesValidated) {
  const auto ex = testing::paper_example();
  sim::SimConfig config;
  config.cores = 2;
  std::vector<graph::Time> too_long(ex.dag.num_nodes(), 100);
  EXPECT_THROW(sim::simulate_with_times(ex.dag, config, too_long), Error);
  std::vector<graph::Time> wrong_size{1, 2};
  EXPECT_THROW(sim::simulate_with_times(ex.dag, config, wrong_size), Error);
}

TEST(AnomalyTest, ZeroActualTimesCollapseSchedule) {
  const auto ex = testing::paper_example();
  sim::SimConfig config;
  config.cores = 2;
  const std::vector<graph::Time> zeros(ex.dag.num_nodes(), 0);
  const auto trace = sim::simulate_with_times(ex.dag, config, zeros);
  EXPECT_EQ(trace.makespan(), 0);
  EXPECT_TRUE(trace.validate_with_durations(zeros).empty());
}

TEST(AnomalyTest, RandomActualTimesRespectBounds) {
  const auto ex = testing::fig3_example();
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto actual = sim::random_actual_times(ex.dag, 0.3, rng);
    for (graph::NodeId v = 0; v < ex.dag.num_nodes(); ++v) {
      EXPECT_GE(actual[v], 0);
      EXPECT_LE(actual[v], ex.dag.wcet(v));
      if (ex.dag.wcet(v) > 0) {
        EXPECT_GE(static_cast<double>(actual[v]),
                  0.3 * static_cast<double>(ex.dag.wcet(v)) - 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace hedra
