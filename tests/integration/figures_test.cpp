#include <gtest/gtest.h>

#include <cmath>

#include "exp/fig6.h"
#include "exp/fig7.h"
#include "exp/fig8.h"
#include "exp/fig9.h"
#include "exp/report.h"

/// Scaled-down versions of the four figure experiments: a handful of DAGs
/// per point, coarse ratio grids.  These check the harness plumbing and the
/// qualitative *shape* of each result — the full-size runs live in bench/.

namespace hedra::exp {
namespace {

TEST(Fig6HarnessTest, ProducesAllCellsAndSummaries) {
  Fig6Config config;
  config.cores = {2, 8};
  config.ratios = {0.02, 0.2, 0.5};
  config.dags_per_point = 6;
  config.params.min_nodes = 30;
  config.params.max_nodes = 80;
  const Fig6Result result = run_fig6(config);
  EXPECT_EQ(result.rows.size(), 6u);
  EXPECT_EQ(result.summaries.size(), 2u);
  for (const auto& row : result.rows) {
    EXPECT_GT(row.avg_original, 0.0);
    EXPECT_GT(row.avg_transformed, 0.0);
  }
}

TEST(Fig6HarnessTest, LargeOffloadFavoursTransformation) {
  // The paper's core observation: once C_off is a large share of the volume,
  // τ' (with v_sync) beats τ on average because the host no longer idles
  // while the accelerator runs.
  Fig6Config config;
  config.cores = {2};
  config.ratios = {0.4};
  config.dags_per_point = 20;
  config.params.min_nodes = 50;
  config.params.max_nodes = 150;
  const Fig6Result result = run_fig6(config);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GT(result.rows.front().pct_change, 0.0)
      << "original should be slower than transformed at C_off/vol = 40%";
}

TEST(Fig7HarnessTest, PessimismSmallerForLargeOffload) {
  Fig7Config config;
  config.cases = {{2, 5, 14}};
  config.ratios = {0.02, 0.45};
  config.dags_per_point = 8;
  config.solver.time_limit_sec = 3.0;
  const Fig7Result result = run_fig7(config);
  ASSERT_EQ(result.rows.size(), 2u);
  // Bounds are never below the optimum.
  for (const auto& row : result.rows) {
    EXPECT_GE(row.incr_rhom_pct, -1e-9);
    EXPECT_GE(row.incr_rhet_pct, -1e-9);
  }
  // Pessimism of R_het decays as C_off grows (Figure 7's shape).
  EXPECT_LT(result.rows[1].incr_rhet_pct, result.rows[0].incr_rhet_pct);
}

TEST(Fig8HarnessTest, SharesSumTo100) {
  Fig8Config config;
  config.cores = {2, 8};
  config.ratios = {0.005, 0.1, 0.4};
  config.dags_per_point = 10;
  config.params.min_nodes = 30;
  config.params.max_nodes = 80;
  const Fig8Result result = run_fig8(config);
  EXPECT_EQ(result.rows.size(), 6u);
  for (const auto& row : result.rows) {
    EXPECT_NEAR(row.pct_s1 + row.pct_s21 + row.pct_s22, 100.0, 1e-9);
  }
}

TEST(Fig8HarnessTest, S1DominatesTinyOffloadsAndVanishesForLarge) {
  Fig8Config config;
  config.cores = {2};
  config.ratios = {0.0012, 0.5};
  config.dags_per_point = 15;
  config.params.min_nodes = 50;
  config.params.max_nodes = 150;
  const Fig8Result result = run_fig8(config);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_GT(result.rows[0].pct_s1, 50.0);  // tiny C_off: mostly S1
  EXPECT_LT(result.rows[1].pct_s1, result.rows[0].pct_s1);
}

TEST(Fig9HarnessTest, HetWinsForLargeOffload) {
  Fig9Config config;
  config.cores = {2, 16};
  config.ratios = {0.002, 0.3};
  config.dags_per_point = 12;
  config.params.min_nodes = 50;
  config.params.max_nodes = 150;
  const Fig9Result result = run_fig9(config);
  ASSERT_EQ(result.rows.size(), 4u);
  for (const auto& row : result.rows) {
    if (row.ratio > 0.2) {
      EXPECT_GT(row.mean_pct, 0.0) << "m=" << row.m;
    }
    EXPECT_GE(row.max_pct, row.mean_pct);
  }
}

TEST(Fig9HarnessTest, BenefitShrinksWithCores) {
  // §5.4: "as m increases, the benefit of R_het is smaller because the
  // self-interference factor is divided by m".
  Fig9Config config;
  config.cores = {2, 16};
  config.ratios = {0.3};
  config.dags_per_point = 15;
  config.params.min_nodes = 50;
  config.params.max_nodes = 150;
  const Fig9Result result = run_fig9(config);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_GT(result.rows[0].mean_pct, result.rows[1].mean_pct);
}

TEST(ReportTest, RendersAndExportsEveryFigure) {
  Fig6Config c6;
  c6.cores = {2};
  c6.ratios = {0.1};
  c6.dags_per_point = 3;
  c6.params.min_nodes = 10;
  c6.params.max_nodes = 60;
  const auto r6 = run_fig6(c6);
  EXPECT_NE(render_fig6(r6).find("C_off/vol"), std::string::npos);

  Fig8Config c8;
  c8.cores = {2};
  c8.ratios = {0.1};
  c8.dags_per_point = 3;
  c8.params.min_nodes = 10;
  c8.params.max_nodes = 60;
  const auto r8 = run_fig8(c8);
  EXPECT_NE(render_fig8(r8).find("S2.1"), std::string::npos);

  Fig9Config c9;
  c9.cores = {2};
  c9.ratios = {0.1};
  c9.dags_per_point = 3;
  c9.params.min_nodes = 10;
  c9.params.max_nodes = 60;
  const auto r9 = run_fig9(c9);
  EXPECT_NE(render_fig9(r9).find("mean pct change"), std::string::npos);

  const std::string dir = ::testing::TempDir();
  write_fig6_csv(r6, dir + "/f6.csv");
  write_fig8_csv(r8, dir + "/f8.csv");
  write_fig9_csv(r9, dir + "/f9.csv");
}

}  // namespace
}  // namespace hedra::exp
