#include <gtest/gtest.h>

#include "analysis/analysis_cache.h"
#include "analysis/multi_offload.h"
#include "analysis/platform_rta.h"
#include "analysis/rta_heterogeneous.h"
#include "common/fixtures.h"
#include "exact/bnb.h"
#include "exact/bounds.h"
#include "gen/hierarchical.h"
#include "gen/multi_device.h"
#include "gen/offload.h"
#include "graph/algorithms.h"
#include "graph/critical_path.h"
#include "sim/scheduler.h"
#include "util/rng.h"

/// Randomised soundness sweep: the analytical bounds of the paper must
/// dominate every work-conserving execution the simulator can produce, and
/// the ordering  len <= OPT <= simulated <= bound  must hold throughout.
/// A violation of any of these would mean a transcription error in
/// Algorithm 1 / Theorem 1 — this is the test that would catch it.

namespace hedra {
namespace {

struct Instance {
  graph::Dag dag;
  int m;
};

std::vector<Instance> random_instances(std::uint64_t seed, int count,
                                       gen::HierarchicalParams params,
                                       double min_ratio, double max_ratio) {
  Rng master(seed);
  std::vector<Instance> out;
  for (int i = 0; i < count; ++i) {
    Rng rng = master.fork();
    graph::Dag dag = gen::generate_hierarchical(params, rng);
    (void)gen::select_offload_node(dag, rng);
    const double ratio =
        min_ratio + (max_ratio - min_ratio) * rng.uniform_real();
    (void)gen::set_offload_ratio(dag, ratio);
    const int m = static_cast<int>(rng.uniform_int(1, 16));
    out.push_back(Instance{std::move(dag), m});
  }
  return out;
}

gen::HierarchicalParams medium_params() {
  gen::HierarchicalParams params;
  params.max_depth = 4;
  params.n_par = 5;
  params.min_nodes = 10;
  params.max_nodes = 80;
  params.wcet_max = 50;
  return params;
}

const std::vector<sim::Policy> kAllPolicies{
    sim::Policy::kBreadthFirst, sim::Policy::kDepthFirst,
    sim::Policy::kCriticalPathFirst, sim::Policy::kIndexOrder,
    sim::Policy::kRandom};

class SoundnessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoundnessSweep, RhomDominatesEveryWorkConservingExecution) {
  for (const auto& inst :
       random_instances(GetParam(), 12, medium_params(), 0.01, 0.6)) {
    const Frac r_hom = analysis::rta_homogeneous(inst.dag, inst.m);
    for (const auto policy : kAllPolicies) {
      sim::SimConfig config;
      config.cores = inst.m;
      config.policy = policy;
      const graph::Time observed = sim::simulated_makespan(inst.dag, config);
      EXPECT_LE(Frac(observed), r_hom)
          << "policy=" << sim::to_string(policy) << " m=" << inst.m;
    }
  }
}

TEST_P(SoundnessSweep, RhetDominatesEveryExecutionOfTransformedTask) {
  for (const auto& inst :
       random_instances(GetParam() + 1000, 12, medium_params(), 0.01, 0.6)) {
    const auto analysis = analysis::analyze_heterogeneous(inst.dag, inst.m);
    for (const auto policy : kAllPolicies) {
      sim::SimConfig config;
      config.cores = inst.m;
      config.policy = policy;
      const graph::Time observed = sim::simulated_makespan(
          analysis.transform.transformed, config);
      EXPECT_LE(Frac(observed), analysis.r_het)
          << "policy=" << sim::to_string(policy) << " m=" << inst.m
          << " scenario=" << to_string(analysis.scenario);
    }
  }
}

TEST_P(SoundnessSweep, MultiOffloadBoundDominatesExecutions) {
  Rng master(GetParam() + 2000);
  gen::HierarchicalParams params = medium_params();
  for (int i = 0; i < 8; ++i) {
    Rng rng = master.fork();
    graph::Dag dag = gen::generate_hierarchical(params, rng);
    // Promote several random internal nodes to offload.
    int promoted = 0;
    for (graph::NodeId v = 0; v < dag.num_nodes() && promoted < 3; ++v) {
      if (dag.in_degree(v) > 0 && dag.out_degree(v) > 0 &&
          rng.bernoulli(0.15)) {
        dag.set_device(v, 1);
        ++promoted;
      }
    }
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    const Frac bound = analysis::rta_multi_offload(dag, m);
    for (const auto policy : kAllPolicies) {
      sim::SimConfig config;
      config.cores = m;
      config.policy = policy;
      EXPECT_LE(Frac(sim::simulated_makespan(dag, config)), bound)
          << "m=" << m << " policy=" << sim::to_string(policy);
    }
  }
}

TEST_P(SoundnessSweep, PlatformBoundDominatesEveryPolicyOnEveryDevice) {
  // The K-device chain bound must dominate every work-conserving execution
  // of every policy — including early-completion runs (simulate_with_times),
  // which are exactly the anomaly-prone executions Graham's argument covers.
  Rng master(GetParam() + 6000);
  gen::HierarchicalParams params = medium_params();
  for (const int num_devices : {1, 2, 3}) {
    params.num_devices = num_devices;
    params.offloads_per_device = 2;
    for (int i = 0; i < 4; ++i) {
      Rng rng = master.fork();
      const double ratio = 0.05 + 0.5 * rng.uniform_real();
      const graph::Dag dag = gen::generate_multi_device(params, ratio, rng);
      const int m = static_cast<int>(rng.uniform_int(1, 16));
      // One CSR snapshot serves all 5 policies × (WCET + early) runs.
      analysis::AnalysisCache cache(dag);
      const Frac bound = cache.r_platform(m);
      for (const auto policy : sim::all_policies()) {
        sim::SimConfig config;
        config.cores = m;
        config.policy = policy;
        EXPECT_LE(Frac(sim::simulated_makespan(cache.flat(), config)), bound)
            << "K=" << num_devices << " m=" << m
            << " policy=" << sim::to_string(policy);
        const auto actual = sim::random_actual_times(dag, 0.3, rng);
        const graph::Time early =
            sim::simulate_with_times(cache.flat(), config, actual).makespan();
        EXPECT_LE(Frac(early), bound)
            << "early completion, K=" << num_devices << " m=" << m
            << " policy=" << sim::to_string(policy);
      }
    }
  }
}

TEST_P(SoundnessSweep, MultiUnitPlatformBoundDominatesEveryPolicy) {
  // ACCEPTANCE CRITERION (PR 4): the generalised bound R_plat(n_d) —
  // vol_d/n_d device terms plus the mixed (units−1)/units weighted chain —
  // must dominate every work-conserving execution on a platform with n_d
  // units per class, for units ∈ {2, 3}, K ∈ {1, 2, 3}, every ready-queue
  // policy, and the anomaly-prone early-completion runs of
  // simulate_with_times.
  Rng master(GetParam() + 7000);
  gen::HierarchicalParams params = medium_params();
  for (const int num_devices : {1, 2, 3}) {
    params.num_devices = num_devices;
    params.offloads_per_device = 2;
    for (const int units : {2, 3}) {
      for (int i = 0; i < 3; ++i) {
        Rng rng = master.fork();
        const double ratio = 0.05 + 0.5 * rng.uniform_real();
        const graph::Dag dag = gen::generate_multi_device(params, ratio, rng);
        const int m = static_cast<int>(rng.uniform_int(1, 16));
        const std::vector<int> device_units(
            static_cast<std::size_t>(num_devices), units);
        analysis::AnalysisCache cache(dag);
        const Frac bound = cache.r_platform(m, device_units);
        // The multiplicity bound never exceeds the single-unit bound, and
        // both dominate every simulated schedule on the multi-unit platform.
        EXPECT_LE(bound, cache.r_platform(m));
        for (const auto policy : sim::all_policies()) {
          sim::SimConfig config;
          config.cores = m;
          config.policy = policy;
          config.device_units = device_units;
          EXPECT_LE(Frac(sim::simulated_makespan(cache.flat(), config)), bound)
              << "K=" << num_devices << " units=" << units << " m=" << m
              << " policy=" << sim::to_string(policy);
          const auto actual = sim::random_actual_times(dag, 0.3, rng);
          const graph::Time early =
              sim::simulate_with_times(cache.flat(), config, actual)
                  .makespan();
          EXPECT_LE(Frac(early), bound)
              << "early completion, K=" << num_devices << " units=" << units
              << " m=" << m << " policy=" << sim::to_string(policy);
        }
      }
    }
  }
}

TEST_P(SoundnessSweep, OrderingLenOptSimBound) {
  gen::HierarchicalParams params;
  params.max_depth = 3;
  params.n_par = 4;
  params.min_nodes = 5;
  params.max_nodes = 25;
  params.wcet_max = 30;
  for (const auto& inst :
       random_instances(GetParam() + 3000, 6, params, 0.05, 0.5)) {
    const int m = std::min(inst.m, 4);
    const graph::Time len = graph::critical_path_length(inst.dag);
    exact::BnbConfig solver;
    solver.time_limit_sec = 5.0;
    const auto opt = exact::min_makespan(inst.dag, m, solver);
    sim::SimConfig config;
    config.cores = m;
    const graph::Time simulated = sim::simulated_makespan(inst.dag, config);
    const auto analysis = analysis::analyze_heterogeneous(inst.dag, m);

    EXPECT_LE(len, opt.makespan);
    EXPECT_LE(exact::makespan_lower_bound(inst.dag, m), opt.makespan);
    EXPECT_LE(opt.makespan, simulated);
    EXPECT_LE(Frac(simulated), analysis.r_hom);
    // Any execution of τ' is a legal execution of τ, so OPT(τ) <= R_het(τ').
    EXPECT_LE(Frac(opt.makespan), analysis.r_het);
  }
}

TEST_P(SoundnessSweep, TransformInvariants) {
  for (const auto& inst :
       random_instances(GetParam() + 4000, 15, medium_params(), 0.005, 0.7)) {
    const auto result = analysis::transform_for_offload(inst.dag);
    // Volume preserved; critical path can only grow.
    EXPECT_EQ(result.transformed.volume(), inst.dag.volume());
    EXPECT_GE(graph::critical_path_length(result.transformed),
              graph::critical_path_length(inst.dag));
    // G_par partitions: parallel nodes + Pred + Succ + v_off = V.
    EXPECT_EQ(result.gpar.dag.num_nodes() + result.pred_of_voff.size() +
                  result.succ_of_voff.size() + 1,
              inst.dag.num_nodes());
    // v_sync is the single gateway: every G_par node descends from it.
    const auto reach =
        graph::descendants(result.transformed, result.vsync);
    for (const auto parent : result.gpar.to_parent) {
      EXPECT_TRUE(reach.test(parent));
    }
  }
}

TEST_P(SoundnessSweep, Scenario1ImpliesGParOutlastsOffload) {
  // Theorem 1's proof for Eq. 2 relies on len(G_par) > C_off whenever v_off
  // is off the critical path of G'.
  for (const auto& inst :
       random_instances(GetParam() + 5000, 15, medium_params(), 0.005, 0.7)) {
    const auto analysis = analysis::analyze_heterogeneous(inst.dag, inst.m);
    if (analysis.scenario == analysis::Scenario::kS1) {
      EXPECT_GT(analysis.len_gpar, analysis.c_off);
    }
    // Note: the converse does NOT hold — v_off can be critical through a
    // long Succ(v_off) suffix even when some G_par path exceeds C_off.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace hedra
