#include <gtest/gtest.h>

#include "analysis/schedulability.h"
#include "common/fixtures.h"
#include "exact/bnb.h"
#include "exp/experiment.h"
#include "gen/hierarchical.h"
#include "gen/offload.h"
#include "graph/dag_io.h"
#include "graph/dot.h"
#include "graph/validate.h"
#include "sim/gantt.h"
#include "sim/scheduler.h"

/// End-to-end pipeline checks: generate -> validate -> serialize ->
/// transform -> analyze -> simulate -> solve, the way a downstream user
/// would drive the library.

namespace hedra {
namespace {

TEST(PipelineTest, GenerateAnalyzeSimulateSolve) {
  Rng rng(2024);
  gen::HierarchicalParams params = gen::HierarchicalParams::small_tasks();
  params.min_nodes = 8;
  params.max_nodes = 20;
  graph::Dag dag = gen::generate_hierarchical(params, rng);
  (void)gen::select_offload_node(dag, rng);
  (void)gen::set_offload_ratio(dag, 0.25);
  graph::throw_if_invalid(dag, graph::heterogeneous_rules());

  const int m = 2;
  const auto analysis = analysis::analyze_heterogeneous(dag, m);
  sim::SimConfig config;
  config.cores = m;
  const auto trace = sim::simulate(analysis.transform.transformed, config);
  EXPECT_TRUE(trace.validate().empty());
  EXPECT_LE(Frac(trace.makespan()), analysis.r_het);

  const auto opt = exact::min_makespan(dag, m);
  EXPECT_TRUE(opt.proven_optimal);
  EXPECT_LE(Frac(opt.makespan), analysis.r_het);
  EXPECT_LE(Frac(opt.makespan), analysis.r_hom);
}

TEST(PipelineTest, SerialisationSurvivesAnalysis) {
  // Write the paper example to text, read it back, and verify that the
  // analysis results are unchanged — what the dag_tool example relies on.
  const auto ex = testing::paper_example();
  const graph::Dag reloaded =
      graph::read_dag_text(graph::write_dag_text(ex.dag));
  const auto a = analysis::analyze_heterogeneous(ex.dag, 2);
  const auto b = analysis::analyze_heterogeneous(reloaded, 2);
  EXPECT_EQ(a.r_het, b.r_het);
  EXPECT_EQ(a.r_hom, b.r_hom);
  EXPECT_EQ(a.scenario, b.scenario);
}

TEST(PipelineTest, SchedulabilityDecisionsRoundTrip) {
  Rng rng(7);
  auto params = gen::HierarchicalParams::small_tasks();
  params.min_nodes = 10;
  params.max_nodes = 40;
  for (int i = 0; i < 5; ++i) {
    graph::Dag dag = gen::generate_hierarchical(params, rng);
    (void)gen::select_offload_node(dag, rng);
    (void)gen::set_offload_ratio(dag, 0.3);
    const auto analysis = analysis::analyze_heterogeneous(dag, 4);
    // Deadline exactly at the bound: schedulable; one tick below: depends
    // on the fractional part, but one full tick below floor(bound): not.
    const graph::Time at = analysis.r_het.ceil();
    const model::DagTask task(dag, at + 10, at);
    const auto report = analysis::check_schedulability(
        task, 4, analysis::AnalysisKind::kHeterogeneous);
    EXPECT_TRUE(report.schedulable);
    const model::DagTask tight(dag, at + 10, analysis.r_het.floor() == at
                                                  ? at - 1
                                                  : analysis.r_het.floor());
    const auto tight_report = analysis::check_schedulability(
        tight, 4, analysis::AnalysisKind::kHeterogeneous);
    EXPECT_FALSE(tight_report.schedulable);
  }
}

TEST(PipelineTest, BatchGenerationIsReproducible) {
  exp::BatchConfig config;
  config.params = gen::HierarchicalParams::small_tasks();
  config.params.min_nodes = 8;
  config.params.max_nodes = 30;
  config.coff_ratio = 0.2;
  config.count = 5;
  config.seed = 99;
  const auto a = exp::generate_batch(config);
  const auto b = exp::generate_batch(config);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].edges(), b[i].edges());
    EXPECT_EQ(a[i].volume(), b[i].volume());
  }
}

TEST(PipelineTest, BatchMembersAreValidHeterogeneousTasks) {
  exp::BatchConfig config;
  config.params = gen::HierarchicalParams::small_tasks();
  config.coff_ratio = 0.15;
  config.count = 10;
  config.seed = 5;
  for (const auto& dag : exp::generate_batch(config)) {
    EXPECT_TRUE(graph::is_valid(dag, graph::heterogeneous_rules()));
    EXPECT_NEAR(gen::offload_ratio(dag), 0.15, 0.03);
  }
}

TEST(PipelineTest, DotAndGanttArtifactsRender) {
  const auto ex = testing::paper_example();
  const auto result = analysis::transform_for_offload(ex.dag);
  graph::DotOptions options;
  for (const auto parent : result.gpar.to_parent) {
    options.highlight.push_back(parent);
  }
  const std::string dot = graph::to_dot(result.transformed, options);
  EXPECT_NE(dot.find("vSync"), std::string::npos);
  sim::SimConfig config;
  config.cores = 2;
  const auto trace = sim::simulate(result.transformed, config);
  const std::string gantt = sim::render_gantt(trace, result.transformed);
  EXPECT_NE(gantt.find("ACC"), std::string::npos);
}

TEST(PipelineTest, GridsAreSane) {
  for (const double r : exp::ratio_grid_fig6()) {
    EXPECT_GT(r, 0.0);
    EXPECT_LE(r, 0.7);
  }
  for (const double r : exp::ratio_grid_fig89()) {
    EXPECT_GE(r, 0.0012);
    EXPECT_LE(r, 0.5);
  }
  EXPECT_EQ(exp::paper_core_counts(), (std::vector<int>{2, 4, 8, 16}));
}

}  // namespace
}  // namespace hedra
