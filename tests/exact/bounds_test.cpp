#include "exact/bounds.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::exact {
namespace {

TEST(BoundsTest, ChainDominatedByCriticalPath) {
  const auto dag = testing::chain(4, 5);
  const LowerBounds lb = makespan_lower_bounds(dag, 2);
  EXPECT_EQ(lb.critical_path, 20);
  EXPECT_EQ(lb.host_area, 10);
  EXPECT_EQ(lb.accel_area, 0);
  EXPECT_EQ(lb.best(), 20);
}

TEST(BoundsTest, WideGraphDominatedByArea) {
  graph::Dag dag;
  for (int i = 0; i < 10; ++i) dag.add_node(4);
  const LowerBounds lb = makespan_lower_bounds(dag, 2);
  EXPECT_EQ(lb.critical_path, 4);
  EXPECT_EQ(lb.host_area, 20);
  EXPECT_EQ(lb.best(), 20);
}

TEST(BoundsTest, HostAreaRoundsUp) {
  graph::Dag dag;
  dag.add_node(3);
  dag.add_node(3);
  dag.add_node(3);
  EXPECT_EQ(makespan_lower_bounds(dag, 2).host_area, 5);  // ceil(9/2)
}

TEST(BoundsTest, PaperExample) {
  const auto ex = testing::paper_example();
  const LowerBounds lb = makespan_lower_bounds(ex.dag, 2);
  EXPECT_EQ(lb.critical_path, 8);
  EXPECT_EQ(lb.host_area, 7);  // ceil(14/2)
  EXPECT_EQ(lb.accel_area, 4);
  EXPECT_EQ(lb.best(), 8);
  // The best-case schedule of Figure 1(b) attains exactly this bound.
}

TEST(BoundsTest, AcceleratorAreaCountsAllOffloads) {
  graph::Dag dag;
  const auto v1 = dag.add_node(1);
  const auto o1 = dag.add_node(7, graph::NodeKind::kOffload, "o1");
  const auto o2 = dag.add_node(5, graph::NodeKind::kOffload, "o2");
  const auto vn = dag.add_node(1);
  dag.add_edge(v1, o1);
  dag.add_edge(v1, o2);
  dag.add_edge(o1, vn);
  dag.add_edge(o2, vn);
  EXPECT_EQ(makespan_lower_bounds(dag, 4).accel_area, 12);
}

TEST(BoundsTest, MoreCoresWeakensAreaBoundOnly) {
  const auto ex = testing::fig3_example();
  const auto lb2 = makespan_lower_bounds(ex.dag, 2);
  const auto lb8 = makespan_lower_bounds(ex.dag, 8);
  EXPECT_EQ(lb2.critical_path, lb8.critical_path);
  EXPECT_GE(lb2.host_area, lb8.host_area);
  EXPECT_GE(lb2.best(), lb8.best());
}

TEST(BoundsTest, DistinctDevicesDoNotSumInAccelArea) {
  // Same shape as the two-offload case above, but o2 on its own device:
  // the devices overlap, so only the busiest one (7) is a lower bound —
  // summing to 12 would exceed the true optimum (1 + 7 + 1 = 9).
  graph::Dag dag;
  const auto v1 = dag.add_node(1);
  const auto o1 = dag.add_node(7, graph::NodeKind::kOffload, "o1");
  const auto o2 = dag.add_node_on(5, 2, "o2");
  const auto vn = dag.add_node(1);
  dag.add_edge(v1, o1);
  dag.add_edge(v1, o2);
  dag.add_edge(o1, vn);
  dag.add_edge(o2, vn);
  EXPECT_EQ(makespan_lower_bounds(dag, 4).accel_area, 7);
  EXPECT_LE(makespan_lower_bound(dag, 4), 9);
}

TEST(BoundsTest, InvalidCoreCountThrows) {
  const auto ex = testing::paper_example();
  EXPECT_THROW(makespan_lower_bound(ex.dag, 0), Error);
}

}  // namespace
}  // namespace hedra::exact
