/// Exact-solver regressions for the incremental B&B rewrite:
///  - golden results: makespan / proven_optimal / root bound / heuristic
///    bound on the pinned fig7-size batches must match the values the
///    pre-rewrite solver produced (tests/golden/bnb_results.txt), and
///  - randomized equivalence: on small instances the solver must agree with
///    the independent exhaustive brute_force enumeration.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/golden_batch.h"
#include "exact/brute_force.h"
#include "exp/experiment.h"

namespace hedra {
namespace {

TEST(BnbGoldenTest, ResultsMatchCommittedGoldens) {
  const std::string path =
      std::string(HEDRA_TEST_DATA_DIR) + "/golden/bnb_results.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(goldens::golden_bnb_text(), buffer.str())
      << "B&B results drifted; the search may be reorganised freely "
         "(nodes_explored is not pinned) but optimal makespans, proven "
         "flags and root/heuristic bounds must not change";
}

TEST(BnbGoldenTest, MatchesBruteForceOnRandomSmallInstances) {
  // Randomized (but seeded) equivalence sweep: generated single-offload
  // DAGs small enough for the exhaustive reference.
  exp::BatchConfig config;
  config.params = gen::HierarchicalParams::small_tasks();
  config.params.min_nodes = 4;
  config.params.max_nodes = 9;
  config.coff_ratio = 0.35;
  config.count = 40;
  config.seed = 0x5EED5EEDULL;
  const auto batch = exp::generate_batch(config);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (const int m : {1, 2, 3}) {
      const auto result = exact::min_makespan(batch[i], m);
      const auto reference = exact::brute_force_min_makespan(batch[i], m);
      EXPECT_TRUE(result.proven_optimal) << "instance " << i << " m=" << m;
      EXPECT_EQ(result.makespan, reference) << "instance " << i << " m=" << m;
      EXPECT_GE(result.makespan, result.root_lower_bound);
      EXPECT_LE(result.makespan, result.heuristic_upper_bound);
    }
  }
}

}  // namespace
}  // namespace hedra
