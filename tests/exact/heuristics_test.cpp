#include "exact/list_heuristics.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "exact/bounds.h"

namespace hedra::exact {
namespace {

TEST(HeuristicsTest, FindsChainOptimum) {
  const auto dag = testing::chain(4, 5);
  EXPECT_EQ(best_heuristic_makespan(dag, 2).makespan, 20);
}

TEST(HeuristicsTest, PaperExampleBestIs8) {
  // Critical-path-first reproduces the Figure 1(b) best case, which matches
  // the lower bound, so the heuristic sweep is optimal here.
  const auto ex = testing::paper_example();
  const auto result = best_heuristic_makespan(ex.dag, 2);
  EXPECT_EQ(result.makespan, 8);
}

TEST(HeuristicsTest, NeverBelowLowerBound) {
  for (const auto& dag :
       {testing::paper_example().dag, testing::fig3_example().dag,
        testing::s21_example(), testing::wide_gpar_example(4)}) {
    for (const int m : {1, 2, 4, 8}) {
      EXPECT_GE(best_heuristic_makespan(dag, m).makespan,
                makespan_lower_bound(dag, m));
    }
  }
}

TEST(HeuristicsTest, BestOverPoliciesIsMinimum) {
  const auto ex = testing::paper_example();
  const auto best = best_heuristic_makespan(ex.dag, 2);
  for (const auto policy :
       {sim::Policy::kBreadthFirst, sim::Policy::kDepthFirst,
        sim::Policy::kCriticalPathFirst, sim::Policy::kIndexOrder}) {
    sim::SimConfig config;
    config.cores = 2;
    config.policy = policy;
    EXPECT_LE(best.makespan, sim::simulated_makespan(ex.dag, config));
  }
}

TEST(HeuristicsTest, RandomTriesCanOnlyImprove) {
  const auto ex = testing::fig3_example();
  const auto none = best_heuristic_makespan(ex.dag, 2, /*random_tries=*/0);
  const auto many = best_heuristic_makespan(ex.dag, 2, /*random_tries=*/16);
  EXPECT_LE(many.makespan, none.makespan);
}

}  // namespace
}  // namespace hedra::exact
