#include "exact/bnb.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "exact/bounds.h"
#include "exact/brute_force.h"
#include "exact/list_heuristics.h"
#include "gen/hierarchical.h"
#include "gen/offload.h"
#include "util/error.h"
#include "util/rng.h"

namespace hedra::exact {
namespace {

TEST(BnbTest, ChainSingleCore) {
  const auto dag = testing::chain(4, 5);
  const BnbResult result = min_makespan(dag, 1);
  EXPECT_EQ(result.makespan, 20);
  EXPECT_TRUE(result.proven_optimal);
}

TEST(BnbTest, IndependentJobsPackPerfectly) {
  graph::Dag dag;
  dag.add_node(3);
  dag.add_node(3);
  dag.add_node(2);
  dag.add_node(2);
  dag.add_node(2);
  // {3,3} and {2,2,2}: optimal 6 on two cores.
  const BnbResult result = min_makespan(dag, 2);
  EXPECT_EQ(result.makespan, 6);
  EXPECT_TRUE(result.proven_optimal);
}

TEST(BnbTest, PaperExampleOptimalIs8) {
  const auto ex = testing::paper_example();
  const BnbResult result = min_makespan(ex.dag, 2);
  EXPECT_EQ(result.makespan, 8);  // Figure 1(b) best case
  EXPECT_TRUE(result.proven_optimal);
}

TEST(BnbTest, EnoughCoresReachLen) {
  const auto ex = testing::fig3_example();
  const BnbResult result = min_makespan(ex.dag, 16);
  EXPECT_EQ(result.makespan, makespan_lower_bounds(ex.dag, 16).critical_path);
  EXPECT_TRUE(result.proven_optimal);
}

TEST(BnbTest, SandwichedByBoundAndHeuristic) {
  for (const auto& dag :
       {testing::paper_example().dag, testing::fig3_example().dag,
        testing::wide_gpar_example(4)}) {
    for (const int m : {1, 2, 4}) {
      const BnbResult result = min_makespan(dag, m);
      EXPECT_GE(result.makespan, result.root_lower_bound);
      EXPECT_LE(result.makespan, result.heuristic_upper_bound);
      EXPECT_GE(result.heuristic_upper_bound,
                best_heuristic_makespan(dag, m).makespan);
    }
  }
}

TEST(BnbTest, MonotoneInCores) {
  const auto ex = testing::fig3_example();
  graph::Time prev = min_makespan(ex.dag, 1).makespan;
  for (const int m : {2, 3, 4, 8}) {
    const graph::Time current = min_makespan(ex.dag, m).makespan;
    EXPECT_LE(current, prev) << "m=" << m;
    prev = current;
  }
}

TEST(BnbTest, TinyBudgetStillReturnsFeasibleMakespan) {
  const auto ex = testing::fig3_example();
  BnbConfig config;
  config.max_nodes = 1;
  const BnbResult result = min_makespan(ex.dag, 2, config);
  EXPECT_GE(result.makespan, result.root_lower_bound);
  EXPECT_LE(result.makespan, result.heuristic_upper_bound);
}

TEST(BnbTest, MultiOffloadSerialisation) {
  // Two parallel offloads of 5 behind a 1-tick source and before a 1-tick
  // sink: the single accelerator forces 12 regardless of host cores.
  graph::Dag dag;
  const auto v1 = dag.add_node(1);
  const auto o1 = dag.add_node(5, graph::NodeKind::kOffload, "o1");
  const auto o2 = dag.add_node(5, graph::NodeKind::kOffload, "o2");
  const auto vn = dag.add_node(1);
  dag.add_edge(v1, o1);
  dag.add_edge(v1, o2);
  dag.add_edge(o1, vn);
  dag.add_edge(o2, vn);
  const BnbResult result = min_makespan(dag, 8);
  EXPECT_EQ(result.makespan, 12);
  EXPECT_TRUE(result.proven_optimal);
}

TEST(BnbTest, InvalidInputsThrow) {
  EXPECT_THROW((void)min_makespan(graph::Dag{}, 2), Error);
  EXPECT_THROW((void)min_makespan(testing::chain(2, 1), 0), Error);
}

TEST(BruteForceTest, GuardsAgainstLargeGraphs) {
  Rng rng(1);
  auto params = gen::HierarchicalParams::small_tasks();
  params.min_nodes = 20;
  const auto dag = gen::generate_hierarchical(params, rng);
  EXPECT_THROW((void)brute_force_min_makespan(dag, 2), Error);
}

TEST(BruteForceTest, MatchesHandComputedCases) {
  EXPECT_EQ(brute_force_min_makespan(testing::chain(3, 4), 1), 12);
  EXPECT_EQ(brute_force_min_makespan(testing::diamond(1, 5, 3, 1), 2), 7);
  const auto ex = testing::paper_example();
  EXPECT_EQ(brute_force_min_makespan(ex.dag, 2), 8);
}

/// The decisive cross-validation: the pruned, dominance-enabled B&B must
/// agree with the independent exhaustive enumeration on random tiny
/// instances across platforms.
class BnbCrossValidationTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BnbCrossValidationTest, AgreesWithBruteForce) {
  Rng rng(GetParam());
  gen::HierarchicalParams params;
  params.max_depth = 2;
  params.n_par = 3;
  params.min_nodes = 4;
  params.max_nodes = 9;
  params.wcet_min = 1;
  params.wcet_max = 9;
  for (int round = 0; round < 8; ++round) {
    graph::Dag dag = gen::generate_hierarchical(params, rng);
    // Half the instances get an offload node to exercise the accelerator.
    if (dag.num_nodes() >= 3 && rng.bernoulli(0.5)) {
      (void)gen::select_offload_node(dag, rng);
    }
    for (const int m : {1, 2, 3}) {
      const graph::Time expected = brute_force_min_makespan(dag, m);
      const BnbResult actual = min_makespan(dag, m);
      ASSERT_TRUE(actual.proven_optimal);
      EXPECT_EQ(actual.makespan, expected)
          << "seed=" << GetParam() << " round=" << round << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbCrossValidationTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace hedra::exact
