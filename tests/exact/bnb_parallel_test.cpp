/// Parallel-vs-sequential equivalence for the work-stealing B&B.  The
/// parallel search explores a different node sequence every run, so nothing
/// about its internals is pinned — what IS pinned is the contract: every
/// proven-optimal parallel makespan equals the sequential result with exact
/// equality, and truncated results stay inside [root_lb, heuristic_ub].
/// These tests run at jobs=4 regardless of hardware_concurrency (4 threads
/// on 1 core still exercise every handoff path) and are the workload of the
/// ThreadSanitizer CI job.

#include "exact/bnb.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "exact/brute_force.h"
#include "exp/experiment.h"
#include "graph/dag.h"

namespace hedra::exact {
namespace {

exp::BatchConfig small_batch(int min_nodes, int max_nodes, int count,
                             std::uint64_t seed) {
  exp::BatchConfig config;
  config.params = gen::HierarchicalParams::small_tasks();
  config.params.min_nodes = min_nodes;
  config.params.max_nodes = max_nodes;
  config.coff_ratio = 0.35;
  config.count = count;
  config.seed = seed;
  return config;
}

/// Randomized batches (single-accelerator, the exact solver's model) at the
/// fig7 platform sizes: every proven-optimal parallel makespan must equal
/// the sequential one exactly.
TEST(BnbParallelTest, MatchesSequentialOnRandomBatches) {
  struct Case {
    int m;
    int min_nodes;
    int max_nodes;
    std::uint64_t seed;
  };
  for (const Case& c :
       {Case{2, 4, 18, 0xC0FFEE01ULL}, Case{8, 20, 40, 0xC0FFEE02ULL}}) {
    const auto batch =
        exp::generate_batch(small_batch(c.min_nodes, c.max_nodes, 12, c.seed));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const BnbResult seq = min_makespan(batch[i], c.m);
      BnbConfig parallel;
      parallel.jobs = 4;
      const BnbResult par = min_makespan(batch[i], c.m, parallel);
      ASSERT_TRUE(seq.proven_optimal) << "m=" << c.m << " instance " << i;
      ASSERT_TRUE(par.proven_optimal) << "m=" << c.m << " instance " << i;
      EXPECT_EQ(par.makespan, seq.makespan)
          << "m=" << c.m << " instance " << i;
      // Root bounds are computed before the search forks; identical.
      EXPECT_EQ(par.root_lower_bound, seq.root_lower_bound);
      EXPECT_EQ(par.heuristic_upper_bound, seq.heuristic_upper_bound);
    }
  }
}

/// Stress: race many small instances back to back at jobs=4 — thread
/// startup/teardown, frontier splitting and stealing on every solve.  Runs
/// under the ASan job (whole suite) and the TSan job (filtered).
TEST(BnbParallelTest, StressManySmallInstancesAtJobs4) {
  const auto batch = exp::generate_batch(small_batch(4, 12, 24, 0xACE5EEDULL));
  BnbConfig parallel;
  parallel.jobs = 4;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (const int m : {1, 2, 3}) {
      const BnbResult par = min_makespan(batch[i], m, parallel);
      ASSERT_TRUE(par.proven_optimal) << "instance " << i << " m=" << m;
      EXPECT_EQ(par.makespan, brute_force_min_makespan(batch[i], m))
          << "instance " << i << " m=" << m;
    }
  }
}

TEST(BnbParallelTest, MultiOffloadSerialisation) {
  // The parallel variant of BnbTest.MultiOffloadSerialisation: two parallel
  // offloads of 5 share the single accelerator, forcing 12.
  graph::Dag dag;
  const auto v1 = dag.add_node(1);
  const auto o1 = dag.add_node(5, graph::NodeKind::kOffload, "o1");
  const auto o2 = dag.add_node(5, graph::NodeKind::kOffload, "o2");
  const auto vn = dag.add_node(1);
  dag.add_edge(v1, o1);
  dag.add_edge(v1, o2);
  dag.add_edge(o1, vn);
  dag.add_edge(o2, vn);
  BnbConfig parallel;
  parallel.jobs = 3;
  const BnbResult result = min_makespan(dag, 8, parallel);
  EXPECT_EQ(result.makespan, 12);
  EXPECT_TRUE(result.proven_optimal);
}

TEST(BnbParallelTest, TinyBudgetStillReturnsFeasibleMakespan) {
  // The shared node budget is polled every 1024 local nodes, so a parallel
  // run may overshoot max_nodes by ~1024 per worker (and a tiny instance
  // may legitimately close inside that slop).  These instances are far too
  // large for a 2000-node budget: truncated results must still be feasible
  // schedules inside [root_lb, heuristic_ub].
  const auto batch = exp::generate_batch(small_batch(30, 60, 8, 0xB0DE7ULL));
  BnbConfig config;
  config.jobs = 4;
  config.max_nodes = 2000;
  int unproven = 0;
  for (const auto& dag : batch) {
    const BnbResult result = min_makespan(dag, 2, config);
    if (!result.proven_optimal) ++unproven;
    EXPECT_GE(result.makespan, result.root_lower_bound);
    EXPECT_LE(result.makespan, result.heuristic_upper_bound);
  }
  EXPECT_GT(unproven, 0) << "every instance closed within ~2k nodes; the "
                            "budget-truncation path was never exercised";
}

TEST(BnbParallelTest, JobsZeroSelectsHardwareDefault) {
  const auto ex = testing::paper_example();
  BnbConfig config;
  config.jobs = 0;  // all hardware threads (1 on a 1-core CI box — also ok)
  const BnbResult result = min_makespan(ex.dag, 2, config);
  EXPECT_EQ(result.makespan, 8);
  EXPECT_TRUE(result.proven_optimal);
}

}  // namespace
}  // namespace hedra::exact
