// hedra-lint: pretend-path(src/exact/bad_tag.cpp)
// hedra-lint: expect(bad-allow-tag)
//
// Known-bad: an allow tag with no reason.  Suppressions must say WHY the
// site is exempt — a bare tag is indistinguishable from a drive-by mute.

namespace hedra::exact {

inline int tagged_without_reason(int a) {
  // hedra-lint: allow(float-in-bound)
  return a + 1;
}

}  // namespace hedra::exact
