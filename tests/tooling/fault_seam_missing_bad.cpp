// hedra-lint: pretend-path(src/serve/bad_alloc.cpp)
// hedra-lint: expect(fault-seam)
//
// Known-bad: an allocation on a serve/ path with no HEDRA_FAULT seam in
// reach.  The robustness CI drives every allocation failure path through
// injected faults; an unseamed allocation is untestable by construction.

#include <memory>

namespace hedra::serve {

struct State {
  int value = 0;
};

inline std::shared_ptr<State> next_state(int value) {
  auto state = std::make_shared<State>();
  state->value = value;
  return state;
}

}  // namespace hedra::serve
