// hedra-lint: pretend-path(src/analysis/bad_api.h)
// hedra-lint: expect(nodiscard-outcome)
//
// Known-bad: a header API returning a Frac bound without [[nodiscard]].
// A silently dropped bound (or util::Outcome) swallows the very result —
// or budget-exhaustion signal — the caller exists to check.

namespace hedra {

class Frac;

namespace analysis {

Frac interference_bound(int volume, int cores);

}  // namespace analysis
}  // namespace hedra
