// hedra-lint: pretend-path(src/exact/stale_tag.cpp)
// hedra-lint: expect(stale-allow)
//
// Known-bad: an allow tag that no longer suppresses anything.  Stale tags
// are latent holes — the next genuine violation near one would be waved
// through — so the linter must demand their removal.

namespace hedra::exact {

inline int clean_integer_math(int a) {
  // hedra-lint: allow(float-in-bound, leftover from a removed double cast)
  return a * 2;
}

}  // namespace hedra::exact
