// hedra-lint: pretend-path(src/serve/good_alloc.cpp)
// hedra-lint: expect-clean
//
// Known-good: the same allocation shape as fault_seam_missing_bad.cpp but
// with the HEDRA_FAULT seam in place, plus a justified (and used) allow
// tag.  The linter must stay silent on all of it.

#include <memory>

#define HEDRA_FAULT(site) static_cast<void>(site)

namespace hedra::serve {

struct State {
  int value = 0;
};

inline std::shared_ptr<State> next_state(int value) {
  HEDRA_FAULT("serve.fixture.alloc");
  auto state = std::make_shared<State>();
  state->value = value;
  return state;
}

// hedra-lint: allow(fault-seam, fixture demonstrates a justified waiver)
inline std::shared_ptr<State> waived_state() { return std::make_shared<State>(); }

}  // namespace hedra::serve
