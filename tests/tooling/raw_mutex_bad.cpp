// hedra-lint: pretend-path(src/sim/bad_lock.cpp)
// hedra-lint: expect(raw-mutex)
//
// Known-bad: a naked std::mutex.  Clang's -Wthread-safety cannot reason
// about unannotated locks, so every lock must be the annotated
// util::Mutex from util/thread_annotations.h.

#include <mutex>

namespace hedra::sim {

struct Counter {
  std::mutex mu;
  int value = 0;
};

}  // namespace hedra::sim
