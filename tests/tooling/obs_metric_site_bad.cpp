// hedra-lint: pretend-path(src/serve/bad_metric_site.cpp)
// hedra-lint: expect(obs-metric-site)
//
// Known-bad: a direct metrics-registry call from outside src/obs.  The
// HEDRA_METRIC* macros are the only sanctioned recording surface — they
// gate on obs::enabled() so disabled telemetry costs one relaxed load,
// and they keep every metric site greppable by macro name.

namespace hedra::obs {
struct Counter {
  void add(unsigned long long n);
};
Counter& counter(const char* name);
}  // namespace hedra::obs

namespace hedra::serve {

inline void record_request() { obs::counter("serve.requests").add(1); }

}  // namespace hedra::serve
