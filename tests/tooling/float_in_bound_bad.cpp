// hedra-lint: pretend-path(src/analysis/bad_bound.cpp)
// hedra-lint: expect(float-in-bound)
//
// Known-bad: a response-time bound computed in floating point.  Theorem 1
// compares bounds at exact equality points, so a double here can flip a
// schedulability verdict; the rule must fire on the declaration line.

namespace hedra::analysis {

inline double bad_makespan_bound(int volume, int m) {
  return (volume + 0.0) / m;
}

}  // namespace hedra::analysis
