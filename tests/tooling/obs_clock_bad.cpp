// hedra-lint: pretend-path(src/obs/bad_clock.cpp)
// hedra-lint: expect(obs-clock)
//
// Known-bad: a direct clock read inside the telemetry layer.  src/obs
// takes every timestamp through util::monotonic_now_ns() so spans share
// the deadline subsystem's monotonic clock — a second clock source would
// let trace timelines disagree with deadline accounting.

#include <chrono>

namespace hedra::obs {

inline long long bad_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace hedra::obs
