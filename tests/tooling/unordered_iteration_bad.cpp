// hedra-lint: pretend-path(src/graph/bad_order.cpp)
// hedra-lint: expect(unordered-container)
//
// Known-bad: iterating a hash container in an output path.  Iteration
// order depends on the hash seed and bucket count, so two runs can emit
// the same nodes in different orders and break bit-identical goldens.

#include <unordered_map>

namespace hedra::graph {

inline int sum_degrees(int n) {
  std::unordered_map<int, int> degree;
  for (int v = 0; v < n; ++v) degree[v] = v;
  int total = 0;
  for (const auto& [v, d] : degree) total += d;
  return total;
}

}  // namespace hedra::graph
