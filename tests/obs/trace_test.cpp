#include "obs/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace hedra::obs {
namespace {

TEST(RequestTraceTest, SpansNestUnderTheInnermostOpenSpan) {
  RequestTrace trace(1);
  const int root = trace.begin("request");
  const int parse = trace.begin("parse");
  trace.end(parse);
  const int rta = trace.begin("rta-fixpoint");
  trace.end(rta);
  trace.end(root);

  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[0].parent, -1);
  EXPECT_EQ(trace.spans()[1].parent, root);
  EXPECT_EQ(trace.spans()[2].parent, root);
  for (const Span& span : trace.spans()) {
    EXPECT_GT(span.end_ns, 0);
    EXPECT_LE(span.start_ns, span.end_ns);
  }
}

TEST(RequestTraceTest, ExplicitStampsAreTakenVerbatim) {
  RequestTrace trace(2);
  const int root = trace.begin_at("request", 1000);
  trace.end_at(root, 5000);
  EXPECT_EQ(trace.spans()[0].start_ns, 1000);
  EXPECT_EQ(trace.spans()[0].end_ns, 5000);
}

TEST(RequestTraceTest, OutOfOrderEndClosesInnerSpansToo) {
  RequestTrace trace(3);
  const int root = trace.begin_at("request", 10);
  (void)trace.begin_at("inner", 20);
  (void)trace.begin_at("innermost", 30);
  trace.end_at(root, 100);  // exception path: only the root gets ended
  for (const Span& span : trace.spans()) {
    EXPECT_EQ(span.end_ns, 100);
  }
}

TEST(RequestTraceTest, EndAllClosesEveryOpenSpanOnce) {
  RequestTrace trace(4);
  (void)trace.begin("request");
  const int parse = trace.begin_at("parse", 50);
  trace.end_at(parse, 60);
  (void)trace.begin("queue-wait");
  trace.end_all();
  for (const Span& span : trace.spans()) {
    EXPECT_GT(span.end_ns, 0);
  }
  // The already-closed span keeps its original stamp.
  EXPECT_EQ(trace.spans()[1].end_ns, 60);
}

TEST(TracerTest, RingOverwritesOldestAndCountsDrops) {
  Tracer tracer(2);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    auto trace = std::make_unique<RequestTrace>(id);
    (void)trace->begin_at("request", static_cast<std::int64_t>(id) * 100);
    tracer.submit(std::move(trace));
  }
  EXPECT_EQ(tracer.submitted(), 3u);
  EXPECT_EQ(tracer.dropped(), 1u);
  const auto traces = tracer.snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0]->id(), 2u);  // oldest surviving first
  EXPECT_EQ(traces[1]->id(), 3u);
}

TEST(TracerTest, SubmitClosesOpenSpans) {
  Tracer tracer;
  auto trace = std::make_unique<RequestTrace>(7);
  (void)trace->begin("request");
  tracer.submit(std::move(trace));
  const auto traces = tracer.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_GT(traces[0]->spans()[0].end_ns, 0);
}

TEST(TracerTest, ChromeTraceJsonRebasesToTheEarliestSpan) {
  Tracer tracer;
  auto trace = std::make_unique<RequestTrace>(9);
  const int root = trace->begin_at("request", 1'000'000);
  const int child = trace->begin_at("rta-fixpoint", 1'200'500);
  trace->end_at(child, 1'800'500);
  trace->end_at(root, 3'000'000);
  trace->note("verb", "ADMIT");
  tracer.submit(std::move(trace));

  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Root at ts=0 (rebased), duration 2000us; child at 200.5us for 600us.
  EXPECT_NE(json.find("{\"name\":\"request\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":9,\"ts\":0.000,\"dur\":2000.000"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"rta-fixpoint\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":9,\"ts\":200.500,\"dur\":600.000"),
            std::string::npos);
  // Notes ride on the root event's args only.
  EXPECT_NE(json.find("\"parent\":-1,\"verb\":\"ADMIT\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":0}"), std::string::npos);
}

}  // namespace
}  // namespace hedra::obs
