#include <gtest/gtest.h>

#include <string>

#include "common/fixtures.h"
#include "exact/bnb.h"
#include "obs/metrics.h"
#include "taskset/contention_rta.h"
#include "taskset/gen.h"
#include "taskset/taskset.h"
#include "util/rng.h"

/// The determinism contract of the telemetry layer (ISSUE PR 10): enabling
/// metrics must not change a single analysis byte.  Recording never
/// consumes RNG streams, never takes locks on analysis hot paths, and
/// flushes only aggregate counters — so every result below is compared for
/// EXACT equality between a metrics-off and a metrics-on run.

namespace hedra {
namespace {

taskset::TaskSet contended_set() {
  taskset::TaskSetGenConfig config;
  config.num_tasks = 4;
  config.total_utilization = 2.0;
  config.dag_params.min_nodes = 8;
  config.dag_params.max_nodes = 20;
  config.dag_params.num_devices = 2;
  config.cores = 8;
  Rng rng(2024);
  return taskset::generate_task_set(config, rng);
}

class ObsDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::reset_values();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset_values();
  }
};

TEST_F(ObsDeterminismTest, ContentionRtaExplainIsByteIdentical) {
  const taskset::TaskSet set = contended_set();
  const taskset::ContentionAnalysis off = taskset::contention_rta(set);
  const std::string off_text = taskset::explain(off, set);

  obs::set_enabled(true);
  const taskset::ContentionAnalysis on = taskset::contention_rta(set);
  const std::string on_text = taskset::explain(on, set);

  EXPECT_EQ(off_text, on_text);
  EXPECT_EQ(off.schedulable, on.schedulable);
  EXPECT_EQ(off.cores_used, on.cores_used);
  EXPECT_EQ(off.telemetry.iterations, on.telemetry.iterations);
  EXPECT_EQ(off.telemetry.fixpoint_solves, on.telemetry.fixpoint_solves);
  // The enabled run actually flushed into the registry.
  EXPECT_EQ(obs::counter("taskset.rta.analyses").value(), 1u);
  EXPECT_EQ(obs::counter("taskset.rta.iterations").value(),
            on.telemetry.iterations);
}

graph::Dag search_forcing_dag();

TEST_F(ObsDeterminismTest, SequentialBnbIsByteIdentical) {
  const graph::Dag dag = search_forcing_dag();
  exact::BnbConfig config;
  config.jobs = 1;

  const exact::BnbResult off = exact::min_makespan(dag, 2, config);
  obs::set_enabled(true);
  const exact::BnbResult on = exact::min_makespan(dag, 2, config);

  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_EQ(off.nodes_explored, on.nodes_explored);
  EXPECT_EQ(off.proven_optimal, on.proven_optimal);
  EXPECT_EQ(off.stats.nodes, on.stats.nodes);
  EXPECT_EQ(off.stats.prune_incumbent, on.stats.prune_incumbent);
  EXPECT_EQ(off.stats.prune_bound, on.stats.prune_bound);
  EXPECT_EQ(exact::explain_search(off), exact::explain_search(on));
  // The flush happened exactly once (the metrics-on solve).
  EXPECT_EQ(obs::counter("exact.bnb.solves").value(), 1u);
  EXPECT_EQ(obs::counter("exact.bnb.nodes").value(), on.stats.nodes);
}

/// A DAG the root bound cannot close: independent jobs {3, 3, 2} on m=2
/// have area bound 4 and chain bound 3, but no partition beats makespan 5
/// — the DFS must search the gap [4, 5) to prove 5 optimal, so the stats
/// are non-trivial.
graph::Dag search_forcing_dag() {
  graph::Dag dag;
  (void)dag.add_node(3);
  (void)dag.add_node(3);
  (void)dag.add_node(2);
  return dag;
}

TEST_F(ObsDeterminismTest, SearchStatsAreInternallyConsistent) {
  const graph::Dag dag = search_forcing_dag();
  exact::BnbConfig config;
  config.jobs = 1;
  const exact::BnbResult result = exact::min_makespan(dag, 2, config);
  ASSERT_FALSE(result.worker_stats.empty())
      << "fixture no longer forces a search";
  ASSERT_EQ(result.worker_stats.size(), 1u);
  EXPECT_GT(result.stats.nodes, 0u);
  EXPECT_EQ(result.stats.nodes, result.nodes_explored);
  EXPECT_EQ(result.worker_stats[0].nodes, result.stats.nodes);
  EXPECT_EQ(result.stats.steals, 0u);   // sequential: nothing to steal
  EXPECT_EQ(result.stats.splits, 0u);
  const std::string text = exact::explain_search(result);
  EXPECT_NE(text.find("proven optimal"), std::string::npos);
  EXPECT_NE(text.find("worker 0:"), std::string::npos);
}

TEST_F(ObsDeterminismTest, RootBoundShortcutLeavesWorkerStatsEmpty) {
  // fig3 on m=2: the heuristic meets the root lower bound, no search runs.
  const graph::Dag dag = hedra::testing::fig3_example().dag;
  exact::BnbConfig config;
  config.jobs = 1;
  const exact::BnbResult result = exact::min_makespan(dag, 2, config);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_TRUE(result.worker_stats.empty());
  EXPECT_EQ(result.stats.nodes, 0u);
  const std::string text = exact::explain_search(result);
  EXPECT_NE(text.find("workers: none"), std::string::npos);
}

TEST_F(ObsDeterminismTest, ParallelBnbAggregatesWorkerStats) {
  const graph::Dag dag = search_forcing_dag();
  exact::BnbConfig config;
  config.jobs = 4;
  const exact::BnbResult result = exact::min_makespan(dag, 2, config);
  ASSERT_EQ(result.worker_stats.size(), 4u);
  std::uint64_t nodes = 0;
  for (const exact::SearchStats& w : result.worker_stats) nodes += w.nodes;
  EXPECT_EQ(result.stats.nodes, nodes);
  // Sequential and parallel proven-optimal makespans agree (DESIGN.md).
  exact::BnbConfig sequential;
  sequential.jobs = 1;
  EXPECT_EQ(result.makespan, exact::min_makespan(dag, 2, sequential).makespan);
}

TEST_F(ObsDeterminismTest, RtaTelemetryCountsThePaths) {
  const taskset::TaskSet set = contended_set();
  const taskset::ContentionAnalysis analysis = taskset::contention_rta(set);
  const taskset::FixpointTelemetry& t = analysis.telemetry;
  EXPECT_GT(t.fixpoint_solves, 0u);
  EXPECT_EQ(t.fixpoint_solves, t.int_path + t.frac_path);
  EXPECT_GE(t.iterations, t.fixpoint_solves);  // every solve iterates >= 1
  EXPECT_GE(t.seed_evals, t.fixpoint_solves);
  const std::string text = taskset::explain_fixpoint(analysis);
  EXPECT_NE(text.find("solves="), std::string::npos);
  EXPECT_NE(text.find("int_path="), std::string::npos);
}

}  // namespace
}  // namespace hedra
