#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/error.h"

namespace hedra::obs {
namespace {

/// The registry is process-global and objects are never deallocated, so
/// every test uses names of its own and leaves recording DISABLED with all
/// values zeroed — the production default the other suites assume.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset_values();
  }
  void TearDown() override {
    set_enabled(false);
    reset_values();
  }
};

TEST_F(ObsMetricsTest, DisabledByDefaultAndMacroRegistersNothing) {
  EXPECT_FALSE(enabled());
  HEDRA_METRIC("obs.test.never_enabled");
  for (const std::string& name : registered_metrics()) {
    EXPECT_NE(name, "obs.test.never_enabled");
  }
}

TEST_F(ObsMetricsTest, MacroArgumentIsNotEvaluatedWhenDisabled) {
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return std::int64_t{7};
  };
  HEDRA_METRIC_SET("obs.test.lazy_gauge", expensive());
  HEDRA_METRIC_OBSERVE("obs.test.lazy_hist", expensive());
  EXPECT_EQ(evaluations, 0);

  set_enabled(true);
  HEDRA_METRIC_SET("obs.test.lazy_gauge", expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(ObsMetricsTest, RegistrationIsIdempotentWithStableAddresses) {
  Counter& a = counter("obs.test.idempotent");
  Counter& b = counter("obs.test.idempotent");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  // reset_values zeroes but never deallocates: the cached reference stays
  // valid and usable.
  reset_values();
  EXPECT_EQ(a.value(), 0u);
  a.add(1);
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(ObsMetricsTest, KindConflictThrows) {
  (void)counter("obs.test.kind_conflict");
  EXPECT_THROW((void)gauge("obs.test.kind_conflict"), Error);
  EXPECT_THROW((void)histogram("obs.test.kind_conflict"), Error);
}

TEST_F(ObsMetricsTest, RegisteredNamesAreSorted) {
  (void)counter("obs.test.names.b");
  (void)counter("obs.test.names.a");
  const std::vector<std::string> names = registered_metrics();
  bool saw_a = false;
  bool saw_b = false;
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
  for (const std::string& name : names) {
    saw_a |= name == "obs.test.names.a";
    saw_b |= name == "obs.test.names.b";
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

// The suite name matches the CI TSan filter: concurrent relaxed adds must
// be exact (no lost updates) AND race-free under instrumentation.
TEST_F(ObsMetricsTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  Counter& hits = counter("obs.test.concurrent");
  Histogram& lat = histogram("obs.test.concurrent_hist");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hits, &lat] {
      for (int i = 0; i < kPerThread; ++i) {
        hits.add(1);
        lat.observe(1000);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hits.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(lat.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(lat.bucket_count(0),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsMetricsTest, HistogramBucketBoundariesAreInclusive) {
  Histogram& hist = histogram("obs.test.hist_bounds");
  // boundary_ns(i) = 1024 * 4^i; bucket i is (boundary(i-1), boundary(i)].
  EXPECT_EQ(Histogram::boundary_ns(0), 1024);
  EXPECT_EQ(Histogram::boundary_ns(1), 4096);

  hist.observe(Histogram::boundary_ns(0));      // on-boundary: bucket 0
  hist.observe(Histogram::boundary_ns(0) + 1);  // just past: bucket 1
  hist.observe(Histogram::boundary_ns(1));      // on-boundary: bucket 1
  hist.observe(-5);                             // clamps to 0: bucket 0
  hist.observe(Histogram::boundary_ns(Histogram::kNumBoundaries - 1) +
               1);                               // overflow bucket
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 2u);
  EXPECT_EQ(hist.bucket_count(Histogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(hist.count(), 5u);
  // The clamped sample contributes 0 to the sum.
  EXPECT_EQ(hist.sum_ns(),
            static_cast<std::uint64_t>(
                Histogram::boundary_ns(0) + Histogram::boundary_ns(0) + 1 +
                Histogram::boundary_ns(1) +
                Histogram::boundary_ns(Histogram::kNumBoundaries - 1) + 1));
}

TEST_F(ObsMetricsTest, PrometheusTextExposesEveryKind) {
  set_enabled(true);
  HEDRA_METRIC("obs.test.prom.counter");
  HEDRA_METRIC_SET("obs.test.prom.gauge", -3);
  HEDRA_METRIC_OBSERVE("obs.test.prom.hist", 2000);
  const std::string text = prometheus_text();
  EXPECT_NE(text.find("# TYPE hedra_obs_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("hedra_obs_test_prom_counter 1"), std::string::npos);
  EXPECT_NE(text.find("hedra_obs_test_prom_gauge -3"), std::string::npos);
  EXPECT_NE(text.find("hedra_obs_test_prom_hist_bucket{le=\"1024\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("hedra_obs_test_prom_hist_bucket{le=\"4096\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("hedra_obs_test_prom_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("hedra_obs_test_prom_hist_sum 2000"),
            std::string::npos);
  EXPECT_NE(text.find("hedra_obs_test_prom_hist_count 1"),
            std::string::npos);
}

TEST_F(ObsMetricsTest, MetricsJsonIsSchemaV1) {
  set_enabled(true);
  HEDRA_METRIC("obs.test.json.counter");
  const std::string json = metrics_json();
  EXPECT_NE(json.find("\"schema\":\"hedra-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.json.counter\":1"), std::string::npos);
}

}  // namespace
}  // namespace hedra::obs
