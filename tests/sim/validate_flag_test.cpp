/// SimConfig::validate gates the per-run trace re-validation: on by default
/// (any violation is a hedra bug and must throw), off in the Monte-Carlo
/// sweep call sites.  The sim::validation_runs() counter makes the gating
/// observable, and the flag must never change the produced schedule.

#include <gtest/gtest.h>

#include "common/golden_batch.h"
#include "sim/scheduler.h"

namespace hedra::sim {
namespace {

TEST(ValidateFlagTest, DefaultOnRunsValidationAndOffSkipsIt) {
  const auto batch = goldens::golden_sim_batch(2);
  SimConfig config;
  config.cores = 4;

  const std::uint64_t before_on = validation_runs();
  (void)simulate(batch[0], config);  // default: validate = true
  EXPECT_EQ(validation_runs(), before_on + 1);

  config.validate = false;
  const std::uint64_t before_off = validation_runs();
  (void)simulate(batch[0], config);
  EXPECT_EQ(validation_runs(), before_off);
}

TEST(ValidateFlagTest, FlagDoesNotChangeTheSchedule) {
  const auto batch = goldens::golden_sim_batch(3);
  for (const auto policy : all_policies()) {
    SimConfig config;
    config.cores = 4;
    config.policy = policy;
    const auto validated = simulate(batch[1], config);
    config.validate = false;
    const auto unvalidated = simulate(batch[1], config);
    EXPECT_EQ(validated.to_text(), unvalidated.to_text())
        << to_string(policy);
    // The unvalidated trace is still a valid schedule, of course.
    EXPECT_TRUE(unvalidated.validate().empty()) << to_string(policy);
  }
}

TEST(ValidateFlagTest, FlatDagEntryPointsHonourTheFlag) {
  const auto batch = goldens::golden_sim_batch(1);
  const graph::FlatDag flat(batch[2]);
  SimConfig config;
  config.cores = 2;
  const std::uint64_t before = validation_runs();
  config.validate = false;
  const auto fast = simulate(flat, config);
  EXPECT_EQ(validation_runs(), before);
  config.validate = true;
  const auto checked = simulate(flat, config);
  EXPECT_EQ(validation_runs(), before + 1);
  EXPECT_EQ(fast.to_text(), checked.to_text());
}

}  // namespace
}  // namespace hedra::sim
