#include "sim/gantt.h"

#include <gtest/gtest.h>

#include "analysis/transform.h"
#include "common/fixtures.h"
#include "sim/scheduler.h"
#include "util/error.h"

namespace hedra::sim {
namespace {

ScheduleTrace paper_trace(int cores) {
  const auto ex = testing::paper_example();
  SimConfig config;
  config.cores = cores;
  return simulate(ex.dag, config);
}

TEST(GanttTest, ShowsEveryUnitRow) {
  const auto ex = testing::paper_example();
  const auto trace = paper_trace(2);
  const std::string chart = render_gantt(trace, ex.dag);
  EXPECT_NE(chart.find("C0"), std::string::npos);
  EXPECT_NE(chart.find("C1"), std::string::npos);
  EXPECT_NE(chart.find("ACC"), std::string::npos);
}

TEST(GanttTest, ShowsNodeLabels) {
  const auto ex = testing::paper_example();
  const auto trace = paper_trace(2);
  const std::string chart = render_gantt(trace, ex.dag);
  EXPECT_NE(chart.find("v2"), std::string::npos);
  EXPECT_NE(chart.find("vO"), std::string::npos);  // vOff, possibly truncated
}

TEST(GanttTest, ShowsTimeAxis) {
  const auto ex = testing::paper_example();
  const auto trace = paper_trace(2);
  const std::string chart = render_gantt(trace, ex.dag);
  EXPECT_NE(chart.find("t=0 .. 12"), std::string::npos);
}

TEST(GanttTest, ListsInstantCompletions) {
  const auto ex = testing::paper_example();
  const auto transformed = analysis::transform_for_offload(ex.dag).transformed;
  SimConfig config;
  config.cores = 2;
  const auto trace = simulate(transformed, config);
  const std::string chart = render_gantt(trace, transformed);
  EXPECT_NE(chart.find("instant:"), std::string::npos);
  EXPECT_NE(chart.find("vSync@3"), std::string::npos);
}

TEST(GanttTest, InstantsCanBeHidden) {
  const auto ex = testing::paper_example();
  const auto transformed = analysis::transform_for_offload(ex.dag).transformed;
  SimConfig config;
  config.cores = 2;
  const auto trace = simulate(transformed, config);
  GanttOptions options;
  options.show_instants = false;
  const std::string chart = render_gantt(trace, transformed, options);
  EXPECT_EQ(chart.find("instant:"), std::string::npos);
}

TEST(GanttTest, LongScheduleIsScaled) {
  const auto dag = testing::chain(4, 100);  // makespan 400
  SimConfig config;
  config.cores = 1;
  const auto trace = simulate(dag, config);
  GanttOptions options;
  options.max_width = 40;
  const std::string chart = render_gantt(trace, dag, options);
  // Each line stays renderable; the scale note reflects compression.
  EXPECT_NE(chart.find("1 char = 10 ticks"), std::string::npos);
}

TEST(GanttTest, EmptyScheduleRenders) {
  graph::Dag dag;
  dag.add_node(0, graph::NodeKind::kSync);
  SimConfig config;
  config.cores = 1;
  const auto trace = simulate(dag, config);
  const std::string chart = render_gantt(trace, dag);
  EXPECT_NE(chart.find("empty"), std::string::npos);
}

TEST(GanttTest, MultiUnitDevicesRenderOneRowPerUnit) {
  // The trace's own unit counts drive the rows — no options needed — so a
  // second concurrent interval on device 1 can never be silently dropped.
  graph::Dag dag;
  const auto src = dag.add_node(1);
  const auto a1 = dag.add_node_on(3, 1, "a1");
  const auto a2 = dag.add_node_on(4, 1, "a2");
  const auto snk = dag.add_node(1);
  for (const auto v : {a1, a2}) {
    dag.add_edge(src, v);
    dag.add_edge(v, snk);
  }
  SimConfig config;
  config.cores = 1;
  config.device_units = {2};
  const auto trace = simulate(dag, config);
  const std::string chart = render_gantt(trace, dag);
  EXPECT_NE(chart.find("ACC |"), std::string::npos);
  EXPECT_NE(chart.find("ACC.1 |"), std::string::npos);
  EXPECT_NE(chart.find("a1"), std::string::npos);
  EXPECT_NE(chart.find("a2"), std::string::npos);
}

TEST(GanttTest, TinyWidthRejected) {
  const auto ex = testing::paper_example();
  const auto trace = paper_trace(2);
  GanttOptions options;
  options.max_width = 3;
  EXPECT_THROW(render_gantt(trace, ex.dag, options), Error);
}

}  // namespace
}  // namespace hedra::sim
