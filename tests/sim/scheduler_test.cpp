#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include "analysis/transform.h"
#include "common/fixtures.h"
#include "graph/critical_path.h"
#include "util/error.h"

namespace hedra::sim {
namespace {

SimConfig cfg(int cores, Policy policy = Policy::kBreadthFirst) {
  SimConfig config;
  config.cores = cores;
  config.policy = policy;
  return config;
}

TEST(SchedulerTest, ChainOnOneCoreTakesVolume) {
  const auto dag = testing::chain(5, 3);
  EXPECT_EQ(simulated_makespan(dag, cfg(1)), 15);
}

TEST(SchedulerTest, ChainIgnoresExtraCores) {
  const auto dag = testing::chain(5, 3);
  EXPECT_EQ(simulated_makespan(dag, cfg(8)), 15);
}

TEST(SchedulerTest, WideGraphWithEnoughCoresTakesLen) {
  const auto dag = testing::wide_gpar_example(4);
  // v1(1) + max(p_i(2), vOff(4)) + v6(1); with 4+ cores everything parallel.
  EXPECT_EQ(simulated_makespan(dag, cfg(4)), 6);
}

TEST(SchedulerTest, PaperFig1cBreadthFirstReaches12) {
  // §3.2/Figure 1(c): breadth-first on m=2 runs v2, v3 before v4, leaving
  // the host idle while v_off executes; response time 12.
  const auto ex = testing::paper_example();
  EXPECT_EQ(simulated_makespan(ex.dag, cfg(2, Policy::kBreadthFirst)), 12);
}

TEST(SchedulerTest, PaperFig1bCriticalPathFirstReaches8) {
  // Figure 1(b)'s best case: scheduling v3 and v4 first overlaps v_off with
  // host work; response time 8.
  const auto ex = testing::paper_example();
  EXPECT_EQ(simulated_makespan(ex.dag, cfg(2, Policy::kCriticalPathFirst)), 8);
}

TEST(SchedulerTest, PaperFig2bTransformedBreadthFirstReaches10) {
  // Figure 2(b): after the transformation the breadth-first schedule takes
  // exactly len(G') = 10.
  const auto ex = testing::paper_example();
  const auto transformed =
      analysis::transform_for_offload(ex.dag).transformed;
  EXPECT_EQ(simulated_makespan(transformed, cfg(2, Policy::kBreadthFirst)),
            10);
}

TEST(SchedulerTest, TraceIsValidatedInternally) {
  const auto ex = testing::paper_example();
  const ScheduleTrace trace = simulate(ex.dag, cfg(2));
  EXPECT_TRUE(trace.validate().empty());
  EXPECT_EQ(trace.makespan(), 12);
}

TEST(SchedulerTest, OffloadRunsOnAccelerator) {
  const auto ex = testing::paper_example();
  const ScheduleTrace trace = simulate(ex.dag, cfg(2));
  EXPECT_EQ(trace.interval_of(ex.voff).unit, kAcceleratorUnit);
}

TEST(SchedulerTest, ZeroWcetNodesCompleteInstantly) {
  graph::Dag dag;
  const auto s = dag.add_node(0, graph::NodeKind::kSync);
  const auto a = dag.add_node(5);
  const auto t = dag.add_node(0, graph::NodeKind::kSync);
  dag.add_edge(s, a);
  dag.add_edge(a, t);
  const ScheduleTrace trace = simulate(dag, cfg(1));
  EXPECT_EQ(trace.makespan(), 5);
  EXPECT_EQ(trace.interval_of(s).unit, kInstantUnit);
  EXPECT_EQ(trace.interval_of(t).start, 5);
  EXPECT_EQ(trace.interval_of(t).finish, 5);
  (void)a;
}

TEST(SchedulerTest, WorkConservingNeverIdlesWithReadyWork) {
  // With two independent nodes and two cores, both start at time 0.
  graph::Dag dag;
  dag.add_node(3);
  dag.add_node(4);
  const ScheduleTrace trace = simulate(dag, cfg(2));
  EXPECT_EQ(trace.interval_of(0).start, 0);
  EXPECT_EQ(trace.interval_of(1).start, 0);
  EXPECT_EQ(trace.makespan(), 4);
}

TEST(SchedulerTest, DepthFirstPrefersNewestReady) {
  // v1 -> {a, b}; a -> c.  After v1, LIFO runs b (newest last? ready order
  // a, b -> LIFO picks b first) on the single core.
  graph::Dag dag;
  const auto v1 = dag.add_node(1);
  const auto a = dag.add_node(1, graph::NodeKind::kHost, "a");
  const auto b = dag.add_node(5, graph::NodeKind::kHost, "b");
  dag.add_edge(v1, a);
  dag.add_edge(v1, b);
  const ScheduleTrace lifo = simulate(dag, cfg(1, Policy::kDepthFirst));
  const ScheduleTrace fifo = simulate(dag, cfg(1, Policy::kBreadthFirst));
  // FIFO runs a (ready first by id) before b; LIFO the opposite.
  EXPECT_LT(fifo.start_of(a), fifo.start_of(b));
  EXPECT_LT(lifo.start_of(b), lifo.start_of(a));
}

TEST(SchedulerTest, RandomPolicyIsSeedDeterministic) {
  const auto ex = testing::fig3_example();
  SimConfig a = cfg(2, Policy::kRandom);
  a.seed = 7;
  SimConfig b = cfg(2, Policy::kRandom);
  b.seed = 7;
  EXPECT_EQ(simulated_makespan(ex.dag, a), simulated_makespan(ex.dag, b));
}

TEST(SchedulerTest, MakespanSandwichedByLenAndGraham) {
  const auto ex = testing::fig3_example();
  const graph::Time len = graph::critical_path_length(ex.dag);
  const graph::Time vol = ex.dag.volume();
  for (const int m : {1, 2, 3, 4, 8}) {
    for (const auto policy :
         {Policy::kBreadthFirst, Policy::kDepthFirst,
          Policy::kCriticalPathFirst, Policy::kIndexOrder, Policy::kRandom}) {
      const graph::Time makespan =
          simulated_makespan(ex.dag, cfg(m, policy));
      EXPECT_GE(makespan, len);
      EXPECT_LE(makespan, vol);
    }
  }
}

TEST(SchedulerTest, SingleNodeGraph) {
  graph::Dag dag;
  dag.add_node(7);
  EXPECT_EQ(simulated_makespan(dag, cfg(3)), 7);
}

TEST(SchedulerTest, MultipleOffloadsSerialiseOnAccelerator) {
  graph::Dag dag;
  const auto v1 = dag.add_node(1);
  const auto o1 = dag.add_node(5, graph::NodeKind::kOffload, "o1");
  const auto o2 = dag.add_node(5, graph::NodeKind::kOffload, "o2");
  const auto vn = dag.add_node(1);
  dag.add_edge(v1, o1);
  dag.add_edge(v1, o2);
  dag.add_edge(o1, vn);
  dag.add_edge(o2, vn);
  const ScheduleTrace trace = simulate(dag, cfg(4));
  // Both offloads on the single accelerator: 1 + 5 + 5 + 1.
  EXPECT_EQ(trace.makespan(), 12);
  EXPECT_EQ(trace.interval_of(o1).unit, kAcceleratorUnit);
  EXPECT_EQ(trace.interval_of(o2).unit, kAcceleratorUnit);
}

TEST(SchedulerTest, DistinctDevicesRunConcurrently) {
  // Same shape as MultipleOffloadsSerialiseOnAccelerator, but o2 on its own
  // device: the two offloads overlap and the makespan drops to 1 + 5 + 1.
  graph::Dag dag;
  const auto v1 = dag.add_node(1);
  const auto o1 = dag.add_node(5, graph::NodeKind::kOffload, "o1");
  const auto o2 = dag.add_node_on(5, 2, "o2");
  const auto vn = dag.add_node(1);
  dag.add_edge(v1, o1);
  dag.add_edge(v1, o2);
  dag.add_edge(o1, vn);
  dag.add_edge(o2, vn);
  const ScheduleTrace trace = simulate(dag, cfg(4));
  EXPECT_EQ(trace.makespan(), 7);
  EXPECT_EQ(trace.interval_of(o1).unit, accelerator_unit(1));
  EXPECT_EQ(trace.interval_of(o2).unit, accelerator_unit(2));
  EXPECT_EQ(trace.start_of(o1), trace.start_of(o2));
}

TEST(SchedulerTest, PerDeviceQueuesAreFifo) {
  // Two nodes per device become ready in id order; each device serialises
  // its own queue while the other device's work proceeds in parallel.
  graph::Dag dag;
  const auto src = dag.add_node(1);
  const auto a1 = dag.add_node_on(3, 1, "a1");
  const auto a2 = dag.add_node_on(4, 1, "a2");
  const auto b1 = dag.add_node_on(2, 2, "b1");
  const auto b2 = dag.add_node_on(6, 2, "b2");
  const auto snk = dag.add_node(1);
  for (const auto v : {a1, a2, b1, b2}) {
    dag.add_edge(src, v);
    dag.add_edge(v, snk);
  }
  const ScheduleTrace trace = simulate(dag, cfg(2));
  // Device 1: a1 [1,4), a2 [4,8).  Device 2: b1 [1,3), b2 [3,9).
  EXPECT_EQ(trace.start_of(a1), 1);
  EXPECT_EQ(trace.start_of(a2), 4);
  EXPECT_EQ(trace.start_of(b1), 1);
  EXPECT_EQ(trace.start_of(b2), 3);
  EXPECT_EQ(trace.makespan(), 10);
  EXPECT_EQ(trace.busy_time(accelerator_unit(1)), 7);
  EXPECT_EQ(trace.busy_time(accelerator_unit(2)), 8);
}

TEST(SchedulerTest, MultiUnitDeviceRunsItsQueueInParallel) {
  // Same shape as PerDeviceQueuesAreFifo, but device 1 gets two units: its
  // queue stops serialising.  Unit 0 keeps the historical odd-negative id;
  // the second concurrent node lands on the first extra (even) unit id.
  graph::Dag dag;
  const auto src = dag.add_node(1);
  const auto a1 = dag.add_node_on(3, 1, "a1");
  const auto a2 = dag.add_node_on(4, 1, "a2");
  const auto snk = dag.add_node(1);
  for (const auto v : {a1, a2}) {
    dag.add_edge(src, v);
    dag.add_edge(v, snk);
  }
  SimConfig config = cfg(2);
  config.device_units = {2};
  const ScheduleTrace trace = simulate(dag, config);
  EXPECT_EQ(trace.start_of(a1), 1);
  EXPECT_EQ(trace.start_of(a2), 1);
  EXPECT_EQ(trace.interval_of(a1).unit, accelerator_unit(1, 0));
  EXPECT_EQ(trace.interval_of(a2).unit, accelerator_unit(1, 1));
  EXPECT_EQ(trace.makespan(), 6);  // 1 + max(3, 4) + 1 instead of 1 + 7 + 1
  EXPECT_EQ(trace.units_of(1), 2);

  // More units than ready work changes nothing beyond the makespan floor.
  config.device_units = {5};
  EXPECT_EQ(simulate(dag, config).makespan(), 6);
}

TEST(SchedulerTest, UnitsBeyondTheVectorDefaultToOne) {
  // device_units shorter than max_device: device 2 falls back to one unit.
  graph::Dag dag;
  const auto src = dag.add_node(1);
  const auto b1 = dag.add_node_on(3, 2, "b1");
  const auto b2 = dag.add_node_on(3, 2, "b2");
  const auto snk = dag.add_node(1);
  for (const auto v : {b1, b2}) {
    dag.add_edge(src, v);
    dag.add_edge(v, snk);
  }
  SimConfig config = cfg(2);
  config.device_units = {4};  // only device 1 configured
  EXPECT_EQ(simulate(dag, config).makespan(), 8);  // 1 + 3 + 3 + 1
}

TEST(SchedulerTest, FreeUnitsAreReusedSmallestIndexFirst) {
  // Three nodes, two units: the third node takes whichever unit frees
  // first, and after both are free again the smaller index wins.
  graph::Dag dag;
  const auto src = dag.add_node(1);
  const auto a1 = dag.add_node_on(2, 1, "a1");
  const auto a2 = dag.add_node_on(5, 1, "a2");
  const auto a3 = dag.add_node_on(2, 1, "a3");
  const auto snk = dag.add_node(1);
  for (const auto v : {a1, a2, a3}) {
    dag.add_edge(src, v);
    dag.add_edge(v, snk);
  }
  SimConfig config = cfg(2);
  config.device_units = {2};
  const ScheduleTrace trace = simulate(dag, config);
  // a1 -> unit 0 [1,3), a2 -> unit 1 [1,6), a3 -> unit 0 again [3,5).
  EXPECT_EQ(trace.interval_of(a1).unit, accelerator_unit(1, 0));
  EXPECT_EQ(trace.interval_of(a2).unit, accelerator_unit(1, 1));
  EXPECT_EQ(trace.interval_of(a3).unit, accelerator_unit(1, 0));
  EXPECT_EQ(trace.start_of(a3), 3);
  EXPECT_EQ(trace.makespan(), 7);
}

/// SATELLITE REGRESSION (pre-PR bug): zero-WCET nodes placed on an
/// accelerator retired instantly via kInstantUnit inside absorb_ready,
/// silently bypassing device serialisation (and failing trace validation
/// had it been on).  They now queue for their device's unit like any other
/// offload: behind a busy unit they wait, and their interval lands on the
/// device, not on kInstantUnit.
TEST(SchedulerTest, ZeroWcetDeviceNodesRespectDeviceSerialisation) {
  graph::Dag dag;
  const auto src = dag.add_node(1);
  const auto busy = dag.add_node_on(5, 1, "busy");
  const auto zero = dag.add_node_on(0, 1, "zero");
  const auto snk = dag.add_node(1);
  for (const auto v : {busy, zero}) {
    dag.add_edge(src, v);
    dag.add_edge(v, snk);
  }
  const ScheduleTrace trace = simulate(dag, cfg(2));  // validation on
  // `busy` holds the single unit over [1, 6); `zero` must wait for it.
  EXPECT_EQ(trace.start_of(zero), 6);
  EXPECT_EQ(trace.finish_of(zero), 6);
  EXPECT_EQ(trace.interval_of(zero).unit, accelerator_unit(1));
  EXPECT_EQ(trace.makespan(), 7);

  // With a second unit the zero-WCET node no longer waits — but it still
  // occupies a real device unit for its zero-length interval.
  SimConfig config = cfg(2);
  config.device_units = {2};
  const ScheduleTrace wide = simulate(dag, config);
  EXPECT_EQ(wide.start_of(zero), 1);
  EXPECT_EQ(wide.interval_of(zero).unit, accelerator_unit(1, 1));
  EXPECT_EQ(wide.makespan(), 7);

  // Host-side zero-WCET nodes keep the historical instant-sync semantics.
  graph::Dag host;
  const auto h1 = host.add_node(2);
  const auto h0 = host.add_node(0, graph::NodeKind::kHost, "h0");
  host.add_edge(h1, h0);
  const ScheduleTrace host_trace = simulate(host, cfg(1));
  EXPECT_EQ(host_trace.interval_of(h0).unit, kInstantUnit);
}

TEST(SchedulerTest, RejectsNonPositiveUnitCounts) {
  const auto ex = testing::multi_device_example();
  SimConfig config = cfg(2);
  config.device_units = {0, 1};
  EXPECT_THROW((void)simulate(ex.dag, config), Error);
  config.device_units = {-3};
  EXPECT_THROW((void)simulate(ex.dag, config), Error);
}

TEST(SchedulerTest, MultiUnitTracesValidateUnderEveryPolicyAndEarlyTimes) {
  const auto ex = testing::multi_device_example();
  Rng rng(99);
  for (const auto policy : all_policies()) {
    for (const int units : {2, 3}) {
      SimConfig config = cfg(2, policy);
      config.device_units = {units, units};
      const ScheduleTrace trace = simulate(ex.dag, config);  // validates
      EXPECT_GT(trace.makespan(), 0);
      const auto actual = random_actual_times(ex.dag, 0.4, rng);
      const ScheduleTrace early =
          simulate_with_times(ex.dag, config, actual);
      EXPECT_LE(early.makespan(), trace.makespan() + ex.dag.volume());
    }
  }
}

TEST(SchedulerTest, MultiDeviceTraceValidatesUnderEveryPolicy) {
  const auto ex = testing::multi_device_example();
  for (const auto policy : all_policies()) {
    const ScheduleTrace trace = simulate(ex.dag, cfg(2, policy));
    EXPECT_TRUE(trace.validate().empty()) << to_string(policy);
  }
}

TEST(SchedulerTest, AllPoliciesListsEveryPolicyOnce) {
  EXPECT_EQ(all_policies().size(), 5u);
  EXPECT_EQ(all_policies().front(), Policy::kBreadthFirst);
}

TEST(SchedulerTest, InvalidInputsThrow) {
  EXPECT_THROW(simulate(graph::Dag{}, cfg(2)), Error);
  const auto ex = testing::paper_example();
  EXPECT_THROW(simulate(ex.dag, cfg(0)), Error);
  graph::Dag cyclic;
  const auto a = cyclic.add_node(1);
  const auto b = cyclic.add_node(1);
  cyclic.add_edge(a, b);
  cyclic.add_edge(b, a);
  EXPECT_THROW(simulate(cyclic, cfg(1)), Error);
}

TEST(SchedulerTest, PolicyNamesRender) {
  EXPECT_STREQ(to_string(Policy::kBreadthFirst), "breadth-first");
  EXPECT_STREQ(to_string(Policy::kDepthFirst), "depth-first");
  EXPECT_STREQ(to_string(Policy::kCriticalPathFirst), "critical-path-first");
  EXPECT_STREQ(to_string(Policy::kIndexOrder), "index-order");
  EXPECT_STREQ(to_string(Policy::kRandom), "random");
}

}  // namespace
}  // namespace hedra::sim
