/// \file makespan_view_test.cpp
/// The makespan-only recorder path over arena views must make the exact
/// scheduling decisions of the trace-recording simulator: for every policy,
/// core count and unit vector, simulated_makespan(view) with validation off
/// equals simulate(FlatDag).makespan() on the same graph.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/experiment.h"
#include "gen/params.h"
#include "graph/flat_dag.h"
#include "sim/scheduler.h"
#include "util/error.h"

namespace hedra::sim {
namespace {

using exp::BatchConfig;
using graph::FlatDagBatch;

BatchConfig small_config(std::uint64_t seed, int devices) {
  BatchConfig config;
  config.params = gen::HierarchicalParams::small_tasks();
  config.params.min_nodes = 10;
  config.params.max_nodes = 60;
  if (devices > 0) {
    config.params.num_devices = devices;
    config.params.offloads_per_device = 2;
  }
  config.coff_ratio = 0.3;
  config.count = 6;
  config.seed = seed;
  return config;
}

TEST(MakespanViewTest, ViewMakespanEqualsTracedMakespan) {
  for (const int devices : {1, 2}) {
    const FlatDagBatch batch =
        exp::generate_flat_batch(small_config(51u + devices, devices));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // The reference simulator runs over a snapshot of the materialised
      // Dag — the legacy pipeline end to end.
      const graph::Dag dag = batch.materialize(i);
      const graph::FlatDag flat(dag);
      for (const Policy policy : all_policies()) {
        for (const int cores : {1, 2, 4}) {
          SimConfig config;
          config.cores = cores;
          config.policy = policy;
          config.seed = 97;  // kRandom consumes the same stream either way
          config.validate = false;
          const Time want = simulate(flat, config).makespan();
          const Time got = simulated_makespan(batch.view(i), config);
          EXPECT_EQ(got, want)
              << "devices " << devices << " dag " << i << " policy "
              << to_string(policy) << " m " << cores;
        }
      }
    }
  }
}

TEST(MakespanViewTest, MultiUnitViewMakespanEqualsTracedMakespan) {
  BatchConfig config = small_config(4096, 2);
  const FlatDagBatch batch = exp::generate_flat_batch(config);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const graph::Dag dag = batch.materialize(i);
    const graph::FlatDag flat(dag);
    SimConfig sim_config;
    sim_config.cores = 2;
    sim_config.device_units = {2, 3};
    sim_config.validate = false;
    const Time want = simulate(flat, sim_config).makespan();
    EXPECT_EQ(simulated_makespan(batch.view(i), sim_config), want)
        << "dag " << i;
  }
}

TEST(MakespanViewTest, ValidationOnSourcelessViewThrows) {
  const FlatDagBatch batch = exp::generate_flat_batch(small_config(9, 1));
  SimConfig config;
  config.cores = 2;
  config.validate = true;  // arena views have no Dag to validate against
  EXPECT_THROW((void)simulated_makespan(batch.view(0), config), Error);
}

TEST(MakespanViewTest, ValidationOnDagBackedViewStillRuns) {
  const FlatDagBatch batch = exp::generate_flat_batch(small_config(9, 1));
  const graph::Dag dag = batch.materialize(0);
  const graph::FlatDag flat(dag);
  SimConfig config;
  config.cores = 2;
  config.validate = true;
  const std::uint64_t before = validation_runs();
  const Time makespan = simulated_makespan(flat.view(), config);
  EXPECT_GT(makespan, 0);
  EXPECT_EQ(validation_runs(), before + 1);
}

}  // namespace
}  // namespace hedra::sim
