/// Golden-trace regression: the simulator's every scheduling decision is
/// frozen.  The goldens under tests/golden/ were serialised from the
/// pre-refactor linear-scan simulator; the event-heap + policy-indexed
/// rewrite must reproduce them byte-for-byte for K ∈ {1, 2, 3} devices ×
/// all five ready-queue policies × m ∈ {2, 8}.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/golden_batch.h"

namespace hedra {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path = std::string(HEDRA_TEST_DATA_DIR) + "/golden/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class GoldenTraceTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldenTraceTest, TracesMatchCommittedGoldens) {
  const int devices = GetParam();
  const std::string expected =
      read_golden("traces_k" + std::to_string(devices) + ".txt");
  EXPECT_EQ(goldens::golden_trace_text(devices), expected)
      << "simulator behaviour drifted for K=" << devices
      << "; if the change is intentional, regenerate tests/golden/ (see "
         "tests/common/golden_batch.h)";
}

INSTANTIATE_TEST_SUITE_P(Devices, GoldenTraceTest, ::testing::Values(1, 2, 3));

TEST(GoldenTraceTest, MultiUnitTracesMatchCommittedGoldens) {
  // n_d ∈ {2, 3} units per device over the K ∈ {2, 3} pinned batches: the
  // per-device free-unit assignment and the extended unit-id encoding are
  // frozen the same way the single-unit scheduling decisions are.
  const std::string expected = read_golden("traces_units.txt");
  EXPECT_EQ(goldens::golden_units_trace_text(), expected)
      << "multi-unit simulator behaviour drifted; if the change is "
         "intentional, regenerate tests/golden/traces_units.txt (see "
         "tests/common/golden_batch.h)";
}

TEST(GoldenTraceTest, ToTextRoundsTripsIntervalOrder) {
  const auto batch = goldens::golden_sim_batch(1);
  sim::SimConfig config;
  config.cores = 2;
  const auto trace = sim::simulate(batch[0], config);
  const std::string text = trace.to_text();
  // One line per node, in scheduling-decision order.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            batch[0].num_nodes());
  std::istringstream in(text);
  graph::NodeId node;
  int unit;
  graph::Time start, finish;
  in >> node >> unit >> start >> finish;
  const auto& first = trace.intervals().front();
  EXPECT_EQ(node, first.node);
  EXPECT_EQ(unit, first.unit);
  EXPECT_EQ(start, first.start);
  EXPECT_EQ(finish, first.finish);
}

}  // namespace
}  // namespace hedra
