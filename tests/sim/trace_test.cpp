#include "sim/trace.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::sim {
namespace {

TEST(TraceTest, MakespanIsLatestFinish) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 5});
  trace.add(Interval{1, 0, 5, 10});
  EXPECT_EQ(trace.makespan(), 10);
}

TEST(TraceTest, EmptyTraceHasZeroMakespan) {
  const auto dag = testing::chain(1, 1);
  const ScheduleTrace trace(&dag, 1);
  EXPECT_EQ(trace.makespan(), 0);
}

TEST(TraceTest, IntervalOfThrowsForMissingNode) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 5});
  EXPECT_THROW((void)trace.interval_of(1), Error);
}

TEST(TraceTest, AddRejectsMalformedIntervals) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 2);
  EXPECT_THROW(trace.add(Interval{9, 0, 0, 5}), Error);   // bad node
  EXPECT_THROW(trace.add(Interval{0, 5, 0, 5}), Error);   // bad unit
  EXPECT_THROW(trace.add(Interval{0, 0, 5, 3}), Error);   // negative span
}

TEST(TraceTest, ValidateAcceptsCorrectSchedule) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 5});
  trace.add(Interval{1, 0, 5, 10});
  EXPECT_TRUE(trace.validate().empty());
}

TEST(TraceTest, ValidateCatchesPrecedenceViolation) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 2);
  trace.add(Interval{0, 0, 0, 5});
  trace.add(Interval{1, 1, 3, 8});  // starts before predecessor finishes
  const auto issues = trace.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().find("before predecessor"), std::string::npos);
}

TEST(TraceTest, ValidateCatchesCapacityOverlap) {
  graph::Dag dag;
  dag.add_node(5);
  dag.add_node(5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 5});
  trace.add(Interval{1, 0, 3, 8});  // same core, overlapping
  const auto issues = trace.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().find("overlaps"), std::string::npos);
}

TEST(TraceTest, ValidateCatchesWrongDuration) {
  const auto dag = testing::chain(1, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 3});
  const auto issues = trace.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("expected 5"), std::string::npos);
}

TEST(TraceTest, ValidateWithDurationsAcceptsEarlyCompletion) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 3});
  trace.add(Interval{1, 0, 3, 8});
  EXPECT_FALSE(trace.validate().empty());
  EXPECT_TRUE(trace.validate_with_durations({3, 5}).empty());
  EXPECT_THROW((void)trace.validate_with_durations({3}), Error);
}

TEST(TraceTest, ValidateCatchesMissingAndDuplicateNodes) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 2);
  trace.add(Interval{0, 0, 0, 5});
  trace.add(Interval{0, 1, 0, 5});  // node 0 twice, node 1 missing
  const auto issues = trace.validate();
  EXPECT_GE(issues.size(), 2u);
}

TEST(TraceTest, ValidateCatchesMisplacedOffload) {
  const auto ex = testing::paper_example();
  ScheduleTrace trace(&ex.dag, 2);
  trace.add(Interval{ex.voff, 0, 0, 4});  // offload on a host core
  const auto issues = trace.validate();
  bool found = false;
  for (const auto& issue : issues) {
    if (issue.find("off its device") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TraceTest, ValidateCatchesHostNodeOnAccelerator) {
  const auto dag = testing::chain(1, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, kAcceleratorUnit, 0, 5});
  const auto issues = trace.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("off the host cores"), std::string::npos);
}

TEST(TraceTest, BusyTimeAndUtilization) {
  graph::Dag dag;
  dag.add_node(6);
  dag.add_node(3);
  ScheduleTrace trace(&dag, 2);
  trace.add(Interval{0, 0, 0, 6});
  trace.add(Interval{1, 1, 0, 3});
  EXPECT_EQ(trace.busy_time(0), 6);
  EXPECT_EQ(trace.busy_time(1), 3);
  EXPECT_DOUBLE_EQ(trace.utilization(0), 1.0);
  EXPECT_DOUBLE_EQ(trace.utilization(1), 0.5);
  EXPECT_EQ(trace.host_idle_time(), 3);
}

TEST(TraceTest, AcceleratorBusyTime) {
  const auto ex = testing::paper_example();
  ScheduleTrace trace(&ex.dag, 2);
  trace.add(Interval{ex.voff, kAcceleratorUnit, 0, 4});
  EXPECT_EQ(trace.busy_time(kAcceleratorUnit), 4);
}

TEST(TraceTest, ConstructionRequiresDagAndCores) {
  const auto dag = testing::chain(1, 1);
  EXPECT_THROW(ScheduleTrace(nullptr, 2), Error);
  EXPECT_THROW(ScheduleTrace(&dag, 0), Error);
}

}  // namespace
}  // namespace hedra::sim
