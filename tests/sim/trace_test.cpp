#include "sim/trace.h"

#include <gtest/gtest.h>

#include <set>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::sim {
namespace {

TEST(TraceTest, MakespanIsLatestFinish) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 5});
  trace.add(Interval{1, 0, 5, 10});
  EXPECT_EQ(trace.makespan(), 10);
}

TEST(TraceTest, EmptyTraceHasZeroMakespan) {
  const auto dag = testing::chain(1, 1);
  const ScheduleTrace trace(&dag, 1);
  EXPECT_EQ(trace.makespan(), 0);
}

TEST(TraceTest, IntervalOfThrowsForMissingNode) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 5});
  EXPECT_THROW((void)trace.interval_of(1), Error);
}

TEST(TraceTest, AddRejectsMalformedIntervals) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 2);
  EXPECT_THROW(trace.add(Interval{9, 0, 0, 5}), Error);   // bad node
  EXPECT_THROW(trace.add(Interval{0, 5, 0, 5}), Error);   // bad unit
  EXPECT_THROW(trace.add(Interval{0, 0, 5, 3}), Error);   // negative span
}

TEST(TraceTest, ValidateAcceptsCorrectSchedule) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 5});
  trace.add(Interval{1, 0, 5, 10});
  EXPECT_TRUE(trace.validate().empty());
}

TEST(TraceTest, ValidateCatchesPrecedenceViolation) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 2);
  trace.add(Interval{0, 0, 0, 5});
  trace.add(Interval{1, 1, 3, 8});  // starts before predecessor finishes
  const auto issues = trace.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().find("before predecessor"), std::string::npos);
}

TEST(TraceTest, ValidateCatchesCapacityOverlap) {
  graph::Dag dag;
  dag.add_node(5);
  dag.add_node(5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 5});
  trace.add(Interval{1, 0, 3, 8});  // same core, overlapping
  const auto issues = trace.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().find("overlaps"), std::string::npos);
}

TEST(TraceTest, ValidateCatchesWrongDuration) {
  const auto dag = testing::chain(1, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 3});
  const auto issues = trace.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("expected 5"), std::string::npos);
}

TEST(TraceTest, ValidateWithDurationsAcceptsEarlyCompletion) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, 0, 0, 3});
  trace.add(Interval{1, 0, 3, 8});
  EXPECT_FALSE(trace.validate().empty());
  EXPECT_TRUE(trace.validate_with_durations({3, 5}).empty());
  EXPECT_THROW((void)trace.validate_with_durations({3}), Error);
}

TEST(TraceTest, ValidateCatchesMissingAndDuplicateNodes) {
  const auto dag = testing::chain(2, 5);
  ScheduleTrace trace(&dag, 2);
  trace.add(Interval{0, 0, 0, 5});
  trace.add(Interval{0, 1, 0, 5});  // node 0 twice, node 1 missing
  const auto issues = trace.validate();
  EXPECT_GE(issues.size(), 2u);
}

TEST(TraceTest, ValidateCatchesMisplacedOffload) {
  const auto ex = testing::paper_example();
  ScheduleTrace trace(&ex.dag, 2);
  trace.add(Interval{ex.voff, 0, 0, 4});  // offload on a host core
  const auto issues = trace.validate();
  bool found = false;
  for (const auto& issue : issues) {
    if (issue.find("off its device") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TraceTest, ValidateCatchesHostNodeOnAccelerator) {
  const auto dag = testing::chain(1, 5);
  ScheduleTrace trace(&dag, 1);
  trace.add(Interval{0, kAcceleratorUnit, 0, 5});
  const auto issues = trace.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("off the host cores"), std::string::npos);
}

TEST(TraceTest, BusyTimeAndUtilization) {
  graph::Dag dag;
  dag.add_node(6);
  dag.add_node(3);
  ScheduleTrace trace(&dag, 2);
  trace.add(Interval{0, 0, 0, 6});
  trace.add(Interval{1, 1, 0, 3});
  EXPECT_EQ(trace.busy_time(0), 6);
  EXPECT_EQ(trace.busy_time(1), 3);
  EXPECT_DOUBLE_EQ(trace.utilization(0), 1.0);
  EXPECT_DOUBLE_EQ(trace.utilization(1), 0.5);
  EXPECT_EQ(trace.host_idle_time(), 3);
}

TEST(TraceTest, AcceleratorBusyTime) {
  const auto ex = testing::paper_example();
  ScheduleTrace trace(&ex.dag, 2);
  trace.add(Interval{ex.voff, kAcceleratorUnit, 0, 4});
  EXPECT_EQ(trace.busy_time(kAcceleratorUnit), 4);
}

TEST(TraceTest, ConstructionRequiresDagAndCores) {
  const auto dag = testing::chain(1, 1);
  EXPECT_THROW(ScheduleTrace(nullptr, 2), Error);
  EXPECT_THROW(ScheduleTrace(&dag, 0), Error);
  EXPECT_THROW(ScheduleTrace(&dag, 2, {0}), Error);  // units must be >= 1
}

TEST(TraceTest, UnitEncodingRoundTripsAndStaysInjective) {
  // Unit 0 keeps the historical odd negatives; extra units live on the even
  // negatives below kInstantUnit.  The encoding must be injective across
  // every (device, unit) pair and invert exactly.
  std::set<int> seen;
  for (graph::DeviceId d = 1; d <= 12; ++d) {
    for (int u = 0; u < 8; ++u) {
      const int unit = accelerator_unit(d, u);
      EXPECT_LT(unit, 0);
      EXPECT_NE(unit, kInstantUnit);
      EXPECT_TRUE(is_accelerator_unit(unit));
      EXPECT_EQ(device_of_unit(unit), d) << "d=" << d << " u=" << u;
      EXPECT_EQ(unit_index_of(unit), u) << "d=" << d << " u=" << u;
      EXPECT_TRUE(seen.insert(unit).second)
          << "collision at d=" << d << " u=" << u;
    }
  }
  // The historical single-unit ids are unchanged.
  EXPECT_EQ(accelerator_unit(1), -1);
  EXPECT_EQ(accelerator_unit(1, 0), kAcceleratorUnit);
  EXPECT_EQ(accelerator_unit(2), -3);
  EXPECT_EQ(accelerator_unit(3), -5);
  EXPECT_FALSE(is_accelerator_unit(kInstantUnit));
  EXPECT_FALSE(is_accelerator_unit(0));
  EXPECT_FALSE(is_accelerator_unit(7));
}

TEST(TraceTest, ValidateChecksUnitIndexAgainstDeviceUnitCount) {
  const auto ex = testing::paper_example();
  // One unit on device 1: an interval on unit index 1 is out of range.
  ScheduleTrace narrow(&ex.dag, 2);
  narrow.add(Interval{ex.voff, accelerator_unit(1, 1), 0, 4});
  bool found = false;
  for (const auto& issue : narrow.validate()) {
    if (issue.find("off its device") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(narrow.units_of(1), 1);

  // Two units: the same interval is a legal placement.
  ScheduleTrace wide(&ex.dag, 2, {2});
  EXPECT_EQ(wide.units_of(1), 2);
  wide.add(Interval{ex.voff, accelerator_unit(1, 1), 0, 4});
  bool misplaced = false;
  for (const auto& issue : wide.validate()) {
    if (issue.find("off its device") != std::string::npos) misplaced = true;
  }
  EXPECT_FALSE(misplaced);

  // A unit of the WRONG device is still rejected even if its index fits.
  ScheduleTrace other(&ex.dag, 2, {2});
  other.add(Interval{ex.voff, accelerator_unit(2, 0), 0, 4});
  bool wrong_device = false;
  for (const auto& issue : other.validate()) {
    if (issue.find("off its device") != std::string::npos) wrong_device = true;
  }
  EXPECT_TRUE(wrong_device);
}

}  // namespace
}  // namespace hedra::sim
