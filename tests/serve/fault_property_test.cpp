/// \file fault_property_test.cpp
/// The fail-closed property, exhaustively over fault sites: run a protocol
/// workload once under a `*=0` discovery config to inventory every seam it
/// crosses, then arm each site in turn and re-run — no matter which seam
/// fails, every ADMITTED answer must still be backed by a complete
/// exact-rational proof (re-checked offline with injection disabled), and
/// the applied state must equal the acknowledged admissions.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph/dag_io.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "taskset/contention_rta.h"
#include "util/fault.h"
#include "util/strings.h"

namespace hedra::serve {
namespace {

struct WorkloadTask {
  std::string name;
  std::string dag_text;
  graph::Time period;
  graph::Time deadline;
};

/// A mix of feasible and infeasible tasks, so both ADMIT and REJECT paths
/// cross their seams on every run.
std::vector<WorkloadTask> workload_tasks() {
  return {
      {"tau1", "node v1 5\nnode v2 9 offload\nedge v1 v2\n", 1000, 1000},
      {"tau2", "node a 20\nnode b 20\nedge a b\n", 500, 500},
      {"doomed", "node a 50\nnode b 50\nnode c 50\nedge a b\nedge b c\n", 100,
       100},
      {"tau3", "node v1 8\n", 800, 800},
  };
}

std::string workload_script() {
  std::ostringstream script;
  for (const WorkloadTask& task : workload_tasks()) {
    script << "ADMIT " << task.name << " period " << task.period
           << " deadline " << task.deadline << "\n"
           << task.dag_text << "endtask\n";
  }
  script << "STATUS\nLEAVE tau2\nQUIT\n";
  return script.str();
}

struct RunResult {
  std::string output;
  std::size_t final_size = 0;
  std::string final_text;
};

RunResult run_workload(const std::string& journal_path) {
  AdmissionConfig config;
  config.platform = model::Platform::parse("4:gpu");
  config.journal_path = journal_path;
  AdmissionService service(config);
  std::istringstream in(workload_script());
  std::ostringstream out;
  (void)run_server(in, out, service);
  RunResult result;
  result.output = out.str();
  result.final_size = service.snapshot()->set.size();
  result.final_text = service.snapshot()->set.to_text();
  return result;
}

/// Re-derives every ADMITTED reply with the unlimited exact test.  Must be
/// called with injection disabled.  Returns the acknowledged final set.
taskset::TaskSet referee(const RunResult& run, const std::string& context) {
  EXPECT_FALSE(fault::enabled()) << "referee must run fault-free";

  // First reply per name answers the ADMIT; the LEAVE outcome is a later
  // "OK tau2" line and is tracked separately (emplace keeps the first).
  std::map<std::string, std::string> reply_for;
  bool tau2_left = false;
  std::istringstream responses(run.output);
  std::string line;
  while (std::getline(responses, line)) {
    if (starts_with(line, "OK tau2")) tau2_left = true;
    std::istringstream fields(line);
    std::string decision, name;
    fields >> decision >> name;
    if (!name.empty()) reply_for.emplace(name, line);
  }

  const model::Platform platform = model::Platform::parse("4:gpu");
  taskset::TaskSet admitted(platform);
  for (const WorkloadTask& task : workload_tasks()) {
    const auto it = reply_for.find(task.name);
    const bool was_admitted =
        it != reply_for.end() && starts_with(it->second, "ADMITTED");
    if (!was_admitted) continue;

    taskset::TaskSet candidate(platform);
    for (const auto& t : admitted) candidate.add(t);
    candidate.add(model::DagTask(graph::read_dag_text(task.dag_text),
                                 task.period, task.deadline, task.name));
    const auto offline = taskset::contention_rta(candidate);
    EXPECT_TRUE(offline.schedulable)
        << context << ": UNSOUND ADMIT of '" << task.name << "' ('"
        << it->second << "')";
    admitted = std::move(candidate);
  }

  // LEAVE tau2 may or may not have applied (its journal write can fault);
  // mirror whatever the daemon answered.
  if (tau2_left) {
    taskset::TaskSet without(platform);
    for (const auto& t : admitted) {
      if (t.name() != "tau2") without.add(t);
    }
    admitted = std::move(without);
  }
  EXPECT_EQ(run.final_size, admitted.size())
      << context << ": applied state diverges from acknowledged replies";
  return admitted;
}

std::string temp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(FaultPropertyTest, NoSiteFaultYieldsAnUnsoundAdmit) {
  // Discovery: enumerate every seam this workload actually crosses.
  fault::clear_registry();
  fault::configure("*=0");
  const RunResult baseline =
      run_workload(temp_journal("fault_prop_discovery.journal"));
  const std::vector<std::string> sites = fault::registered_sites();
  fault::reset();
  ASSERT_GE(sites.size(), 5u)
      << "workload crossed suspiciously few fault sites";
  referee(baseline, "discovery run");

  // Arm each site in turn, at the first and at a later hit, so both the
  // first crossing and a mid-stream crossing fail at least once.
  int runs = 0;
  for (const std::string& site : sites) {
    for (const std::uint64_t nth : {std::uint64_t{1}, std::uint64_t{3}}) {
      fault::Trigger trigger;
      trigger.nth = nth;
      fault::reset();
      fault::arm(site, trigger);
      const std::string journal = temp_journal(
          "fault_prop_" + std::to_string(runs) + ".journal");
      RunResult run;
      bool served = true;
      try {
        run = run_workload(journal);
      } catch (const Error&) {
        // The fault fired inside the service CONSTRUCTOR (e.g. the journal
        // platform header's write seam): refusing to start is fail-closed —
        // nothing was admitted, so there is nothing to referee.
        served = false;
      }
      fault::reset();

      AdmissionConfig config;
      config.platform = model::Platform::parse("4:gpu");
      config.journal_path = journal;
      if (served) {
        const taskset::TaskSet admitted =
            referee(run, site + "=@" + std::to_string(nth));
        (void)admitted;
        // Restart on the same journal: whatever survived the fault must
        // replay to exactly the applied state (crash consistency holds
        // under injected failures too, not just clean runs).
        AdmissionService recovered(config);
        EXPECT_EQ(recovered.snapshot()->set.to_text(), run.final_text)
            << site << "=@" << nth << ": journal replay diverges";
      } else {
        // The aborted start must not have poisoned the journal.
        AdmissionService recovered(config);
        EXPECT_EQ(recovered.snapshot()->set.size(), 0u)
            << site << "=@" << nth
            << ": a service that never served left state behind";
      }
      ++runs;
    }
  }
  fault::clear_registry();
  EXPECT_GE(runs, 10);
}

}  // namespace
}  // namespace hedra::serve
