/// \file crash_recovery_test.cpp
/// The headline crash-safety property: a process SIGKILLed in the middle of
/// a journal append must, on restart, replay to EXACTLY the state of the
/// last acknowledged admission — bit-identical TaskSet text, no partial
/// record applied, no acknowledged record lost.
///
/// The test forks a child that arms a kill-action fault at the journal's
/// mid-append seam (`serve.journal.write.mid=@N!kill`), then admits tasks
/// until the fault SIGKILLs it without unwinding — a real torn write, not a
/// simulated one.  The parent waits for the SIGKILL, replays the journal,
/// and checks the recovered state.

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/dag_io.h"
#include "serve/admission.h"
#include "util/fault.h"

namespace hedra::serve {
namespace {

model::DagTask easy_task(const std::string& name) {
  return model::DagTask(graph::read_dag_text("node v1 5\n"), 1000, 1000,
                        name);
}

AdmissionConfig config_with(const std::string& journal) {
  AdmissionConfig config;
  config.platform = model::Platform::parse("4:acc");
  config.journal_path = journal;
  return config;
}

/// Forks a child that dies via SIGKILL at the `nth` hit of `site` while
/// admitting tasks tau1..tau9.  Returns only in the parent, after asserting
/// the child was indeed killed.
void run_child_until_killed(const std::string& path, const std::string& site,
                            int nth) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: never return into gtest.  Everything from here must end in
    // _exit or SIGKILL.
    fault::configure(site + "=@" + std::to_string(nth) + "!kill");
    try {
      AdmissionService service(config_with(path));
      for (int i = 1; i <= 9; ++i) {
        (void)service.admit(easy_task("tau" + std::to_string(i)));
      }
    } catch (...) {
      _exit(2);  // a throw instead of the expected SIGKILL
    }
    _exit(3);  // survived: the fault never fired
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited with code "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
      << " instead of dying by signal";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

TEST(CrashRecoveryTest, KilledMidAppendRecoversAcknowledgedStateExactly) {
  const std::string path =
      ::testing::TempDir() + "/crash_mid_append.journal";
  std::remove(path.c_str());

  // Fault hit #1 is the platform header, hit #4 is tau3's admit record: the
  // child acknowledged tau1 and tau2, died writing tau3.
  run_child_until_killed(path, "serve.journal.write.mid", 4);

  // The journal has a torn tail (header of tau3's record, no payload).
  const JournalReplay replay = Journal::replay(path);
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 3u);  // platform + tau1 + tau2

  // Recovery: exactly the acknowledged tasks, bit-identical to a set built
  // from those admissions directly.
  AdmissionService recovered(config_with(path));
  taskset::TaskSet expected(model::Platform::parse("4:acc"));
  expected.add(easy_task("tau1"));
  expected.add(easy_task("tau2"));
  EXPECT_EQ(recovered.snapshot()->set.to_text(), expected.to_text());
  EXPECT_TRUE(recovered.snapshot()->analysis.schedulable);

  // The recovered service serves on, truncating the torn tail for good.
  EXPECT_EQ(recovered.admit(easy_task("tau3")).decision, Decision::kAdmitted);
  const JournalReplay after = Journal::replay(path);
  EXPECT_FALSE(after.torn_tail);
  EXPECT_EQ(after.records.size(), 4u);
}

TEST(CrashRecoveryTest, KilledBeforeAnyPayloadRecoversEmpty) {
  const std::string path = ::testing::TempDir() + "/crash_first.journal";
  std::remove(path.c_str());

  // Hit #1 is the platform header itself: the journal is all torn tail.
  run_child_until_killed(path, "serve.journal.write.mid", 1);
  const JournalReplay replay = Journal::replay(path);
  EXPECT_TRUE(replay.records.empty());

  AdmissionService recovered(config_with(path));
  EXPECT_EQ(recovered.snapshot()->set.size(), 0u);
  EXPECT_EQ(recovered.admit(easy_task("tau1")).decision, Decision::kAdmitted);
}

TEST(CrashRecoveryTest, KilledAtTheSyncSeamLosesNothing) {
  const std::string path = ::testing::TempDir() + "/crash_sync.journal";
  std::remove(path.c_str());

  // The sync seam sits AFTER the payload write: the record is complete on
  // disk, so recovery must include it even though fsync never ran (the test
  // observes the page cache; durability against power loss is fsync's job,
  // ordering is the journal's).
  run_child_until_killed(path, "serve.journal.sync", 3);
  const JournalReplay replay = Journal::replay(path);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 3u);  // platform + tau1 + tau2

  AdmissionService recovered(config_with(path));
  EXPECT_EQ(recovered.snapshot()->set.size(), 2u);
}

}  // namespace
}  // namespace hedra::serve
