#include "serve/admission.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/dag_io.h"
#include "util/fault.h"

namespace hedra::serve {
namespace {

model::DagTask make_task(const std::string& name, const std::string& dag_text,
                         graph::Time period, graph::Time deadline) {
  return model::DagTask(graph::read_dag_text(dag_text), period, deadline,
                        name);
}

/// A trivially schedulable task: one 5-tick host node.
model::DagTask easy_task(const std::string& name) {
  return make_task(name, "node v1 5\n", 1000, 1000);
}

/// Critical path 150 > deadline 100: infeasible on ANY platform, and the
/// seed bound alone proves it.
model::DagTask impossible_task(const std::string& name) {
  return make_task(name,
                   "node a 50\nnode b 50\nnode c 50\nedge a b\nedge b c\n",
                   100, 100);
}

AdmissionConfig config_with(const std::string& journal = "") {
  AdmissionConfig config;
  config.platform = model::Platform::parse("4:acc");
  config.journal_path = journal;
  return config;
}

std::string temp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(AdmissionServiceTest, AdmitUpdatesTheSnapshot) {
  AdmissionService service(config_with());
  EXPECT_EQ(service.snapshot()->set.size(), 0u);

  const AdmissionReply reply = service.admit(easy_task("tau1"));
  EXPECT_EQ(reply.decision, Decision::kAdmitted);
  EXPECT_EQ(reply.outcome, util::Outcome::kComplete);
  EXPECT_EQ(reply.task, "tau1");
  EXPECT_GE(reply.cores, 1);
  EXPECT_EQ(reply.response, Frac(5));

  const auto snapshot = service.snapshot();
  EXPECT_EQ(snapshot->set.size(), 1u);
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_TRUE(snapshot->analysis.schedulable);
}

TEST(AdmissionServiceTest, DuplicateNameIsAnError) {
  AdmissionService service(config_with());
  EXPECT_EQ(service.admit(easy_task("tau1")).decision, Decision::kAdmitted);
  const AdmissionReply reply = service.admit(easy_task("tau1"));
  EXPECT_EQ(reply.decision, Decision::kError);
  EXPECT_EQ(service.snapshot()->set.size(), 1u);
  EXPECT_EQ(service.snapshot()->version, 1u);
}

TEST(AdmissionServiceTest, InfeasibleTaskRejectedWithProof) {
  AdmissionService service(config_with());
  const AdmissionReply reply = service.admit(impossible_task("tau1"));
  EXPECT_EQ(reply.decision, Decision::kRejected);
  EXPECT_EQ(reply.outcome, util::Outcome::kComplete);
  EXPECT_EQ(service.snapshot()->set.size(), 0u);
}

TEST(AdmissionServiceTest, BudgetCutFallsBackToSeedProof) {
  // max_work_per_request = 1 exhausts the budget on the first fixpoint
  // poll, forcing the degradation ladder.  The impossible task's seed bound
  // exceeds its deadline, so the REJECT is still a proof.
  AdmissionConfig config = config_with();
  config.max_work_per_request = 1;
  AdmissionService service(config);

  const AdmissionReply rejected = service.admit(impossible_task("tau1"));
  EXPECT_EQ(rejected.decision, Decision::kRejected);
  EXPECT_EQ(rejected.outcome, util::Outcome::kComplete);
  EXPECT_NE(rejected.detail.find("seed bound"), std::string::npos);

  // The easy task's seed fits its deadline: no proof either way under the
  // cut, so the answer is PROVISIONAL and nothing is applied.
  const AdmissionReply provisional = service.admit(easy_task("tau2"));
  EXPECT_EQ(provisional.decision, Decision::kProvisional);
  EXPECT_EQ(provisional.outcome, util::Outcome::kBudgetExhausted);
  EXPECT_EQ(service.snapshot()->set.size(), 0u);
  EXPECT_EQ(service.snapshot()->version, 0u);
}

TEST(AdmissionServiceTest, ExpiredDeadlineNeverAdmits) {
  AdmissionService service(config_with());
  const AdmissionReply reply =
      service.admit(easy_task("tau1"), util::Deadline::after_seconds(-1.0));
  // An already-expired deadline cannot produce a proof; the answer must be
  // PROVISIONAL (or a seed-bound REJECT), never ADMITTED.
  EXPECT_NE(reply.decision, Decision::kAdmitted);
  EXPECT_EQ(service.snapshot()->set.size(), 0u);
}

TEST(AdmissionServiceTest, LeaveRemovesAndReanalyses) {
  AdmissionService service(config_with());
  EXPECT_EQ(service.admit(easy_task("tau1")).decision, Decision::kAdmitted);
  EXPECT_EQ(service.admit(easy_task("tau2")).decision, Decision::kAdmitted);

  const AdmissionReply reply = service.leave("tau1");
  EXPECT_EQ(reply.decision, Decision::kOk);
  const auto snapshot = service.snapshot();
  EXPECT_EQ(snapshot->set.size(), 1u);
  EXPECT_EQ(snapshot->set[0].name(), "tau2");
  EXPECT_EQ(snapshot->version, 3u);

  EXPECT_EQ(service.leave("tau1").decision, Decision::kError);
}

TEST(AdmissionServiceTest, StatusLineSummarisesTheState) {
  AdmissionService service(config_with());
  EXPECT_EQ(service.status_line(),
            "tasks=0 cores_used=0 schedulable=1 version=0 platform=4:acc "
            "journal_bytes=0 admitted=0 rejected_exact=0 rejected_seed=0 "
            "provisional=0 admit_errors=0");
  EXPECT_EQ(service.admit(easy_task("tau1")).decision, Decision::kAdmitted);
  EXPECT_NE(service.status_line().find("tasks=1"), std::string::npos);
  EXPECT_NE(service.status_line().find("schedulable=1"), std::string::npos);
  EXPECT_NE(service.status_line().find("admitted=1"), std::string::npos);
}

TEST(AdmissionServiceTest, LadderTalliesCountEveryRung) {
  AdmissionService service(config_with());
  EXPECT_EQ(service.admit(easy_task("tau1")).decision, Decision::kAdmitted);
  // Duplicate name: an error, not a ladder rung.
  EXPECT_EQ(service.admit(easy_task("tau1")).decision, Decision::kError);
  const AdmissionService::LadderTallies t = service.ladder_tallies();
  EXPECT_EQ(t.admitted, 1u);
  EXPECT_EQ(t.errors, 1u);
  EXPECT_EQ(t.rejected_exact, 0u);
  EXPECT_EQ(t.rejected_seed, 0u);
  EXPECT_EQ(t.provisional, 0u);
}

TEST(AdmissionServiceTest, JournalReplayIsBitIdentical) {
  const std::string path = temp_journal("admission_replay.journal");
  std::string before;
  {
    AdmissionService service(config_with(path));
    EXPECT_EQ(service.admit(easy_task("tau1")).decision, Decision::kAdmitted);
    EXPECT_EQ(service.admit(easy_task("tau2")).decision, Decision::kAdmitted);
    EXPECT_EQ(service.admit(easy_task("tau3")).decision, Decision::kAdmitted);
    EXPECT_EQ(service.leave("tau2").decision, Decision::kOk);
    before = service.snapshot()->set.to_text();
  }
  AdmissionService recovered(config_with(path));
  EXPECT_EQ(recovered.snapshot()->set.to_text(), before);
  EXPECT_TRUE(recovered.snapshot()->analysis.schedulable);
  // And the recovered service keeps serving.
  EXPECT_EQ(recovered.admit(easy_task("tau4")).decision, Decision::kAdmitted);
}

TEST(AdmissionServiceTest, JournalPlatformMismatchRefusesToServe) {
  const std::string path = temp_journal("admission_mismatch.journal");
  {
    AdmissionService service(config_with(path));
    EXPECT_EQ(service.admit(easy_task("tau1")).decision, Decision::kAdmitted);
  }
  AdmissionConfig other;
  other.platform = model::Platform::parse("2:acc");
  other.journal_path = path;
  EXPECT_THROW(AdmissionService service(other), Error);
}

TEST(AdmissionServiceTest, JournalFaultAbortsBeforePublish) {
  const std::string path = temp_journal("admission_fault.journal");
  AdmissionService service(config_with(path));
  EXPECT_EQ(service.admit(easy_task("tau1")).decision, Decision::kAdmitted);

  fault::configure("serve.journal.write=@1");
  EXPECT_THROW((void)service.admit(easy_task("tau2")), fault::Injected);
  fault::reset();

  // Nothing was journalled OR published for the failed admit.
  EXPECT_EQ(service.snapshot()->set.size(), 1u);
  EXPECT_EQ(service.snapshot()->version, 1u);
  EXPECT_EQ(service.admit(easy_task("tau2")).decision, Decision::kAdmitted);
  fault::clear_registry();
}

TEST(AdmissionServiceTest, SnapshotAllocFaultLeavesStateUntouched) {
  AdmissionService service(config_with());
  fault::configure("serve.snapshot.alloc=@1");
  EXPECT_THROW((void)service.admit(easy_task("tau1")), fault::Injected);
  fault::reset();
  EXPECT_EQ(service.snapshot()->set.size(), 0u);
  EXPECT_EQ(service.admit(easy_task("tau1")).decision, Decision::kAdmitted);
  fault::clear_registry();
}

TEST(AdmissionServiceTest, TaskToTextMatchesTasksetSerialisation) {
  const model::DagTask task = easy_task("tau1");
  taskset::TaskSet set(model::Platform::parse("4:acc"));
  set.add(task);
  const std::string set_text = set.to_text();
  const std::string block = task_to_text(task);
  // The block is exactly the task's lines of the set serialisation.
  EXPECT_NE(set_text.find(block), std::string::npos);
}

}  // namespace
}  // namespace hedra::serve
