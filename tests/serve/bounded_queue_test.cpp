#include "serve/bounded_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/fault.h"

namespace hedra::serve {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(BoundedQueueTest, FullQueueRefusesInsteadOfBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // shed, not blocked
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_TRUE(queue.try_push(3));  // capacity freed
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<std::string> queue(4);
  EXPECT_TRUE(queue.try_push("a"));
  EXPECT_TRUE(queue.try_push("b"));
  queue.close();
  EXPECT_FALSE(queue.try_push("rejected"));
  EXPECT_EQ(queue.pop(), "a");
  EXPECT_EQ(queue.pop(), "b");
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.pop(), std::nullopt);  // stays ended
}

TEST(BoundedQueueTest, CloseWakesABlockedPop) {
  BoundedQueue<int> queue(4);
  std::optional<int> result = 42;
  std::thread consumer([&] { result = queue.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
  EXPECT_EQ(result, std::nullopt);
}

TEST(BoundedQueueTest, HandOffAcrossThreads) {
  BoundedQueue<int> queue(16);
  std::vector<int> received;
  std::thread consumer([&] {
    for (;;) {
      auto item = queue.pop();
      if (!item.has_value()) break;
      received.push_back(*item);
    }
  });
  for (int i = 0; i < 1000; ++i) {
    while (!queue.try_push(i)) std::this_thread::yield();
  }
  queue.close();
  consumer.join();
  ASSERT_EQ(received.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(BoundedQueueTest, InjectedPushFaultThrows) {
  BoundedQueue<int> queue(4);
  fault::configure("serve.queue.push=@1");
  EXPECT_THROW((void)queue.try_push(1), fault::Injected);
  fault::reset();
  // The faulted push handed nothing off.
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_EQ(queue.pop(), 2);
  fault::clear_registry();
}

}  // namespace
}  // namespace hedra::serve
