#include "serve/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "util/error.h"
#include "util/fault.h"

namespace hedra::serve {
namespace {

std::string temp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(JournalTest, AppendReplayRoundTrip) {
  const std::string path = temp_journal("roundtrip.journal");
  {
    Journal journal(path);
    journal.append("platform 4:acc");
    journal.append("admit\ntask tau1 ...\nendtask\n");
    journal.append("");  // empty records are legal frames
    EXPECT_EQ(journal.records_written(), 3u);
  }
  const JournalReplay replay = Journal::replay(path);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0], "platform 4:acc");
  EXPECT_EQ(replay.records[1], "admit\ntask tau1 ...\nendtask\n");
  EXPECT_EQ(replay.records[2], "");
  EXPECT_FALSE(replay.torn_tail);
}

TEST(JournalTest, MissingFileReplaysEmpty) {
  const JournalReplay replay =
      Journal::replay(::testing::TempDir() + "/never_created.journal");
  EXPECT_TRUE(replay.records.empty());
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.clean_bytes, 0u);
}

TEST(JournalTest, ReopenAppendsAfterExistingRecords) {
  const std::string path = temp_journal("reopen.journal");
  {
    Journal journal(path);
    journal.append("one");
  }
  {
    Journal journal(path);
    journal.append("two");
  }
  const JournalReplay replay = Journal::replay(path);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0], "one");
  EXPECT_EQ(replay.records[1], "two");
}

TEST(JournalTest, TornTailIsToleratedAndTruncatedOnOpen) {
  const std::string path = temp_journal("torn.journal");
  {
    Journal journal(path);
    journal.append("kept record");
    journal.append("doomed record");
  }
  // Chop bytes off the last frame: a crash mid-append.
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 4u);
  for (std::size_t chop = 1; chop <= 4; ++chop) {
    write_file(path, bytes.substr(0, bytes.size() - chop));
    const JournalReplay replay = Journal::replay(path);
    ASSERT_EQ(replay.records.size(), 1u) << "chop " << chop;
    EXPECT_EQ(replay.records[0], "kept record");
    EXPECT_TRUE(replay.torn_tail);
  }
  // Opening for append truncates the torn tail and continues cleanly.
  {
    Journal journal(path);
    journal.append("replacement");
  }
  const JournalReplay replay = Journal::replay(path);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0], "kept record");
  EXPECT_EQ(replay.records[1], "replacement");
  EXPECT_FALSE(replay.torn_tail);
}

TEST(JournalTest, PartialHeaderIsATornTail) {
  const std::string path = temp_journal("partial_header.journal");
  {
    Journal journal(path);
    journal.append("whole");
  }
  std::string bytes = read_file(path);
  write_file(path, bytes + "HJ");  // 2 stray bytes: less than a header
  const JournalReplay replay = Journal::replay(path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_TRUE(replay.torn_tail);
}

TEST(JournalTest, CorruptPayloadIsFatalNotTorn) {
  const std::string path = temp_journal("corrupt.journal");
  {
    Journal journal(path);
    journal.append("record one");
    journal.append("record two");
  }
  // Flip one byte inside the FIRST record's payload: the frame is complete,
  // so a CRC mismatch means in-place corruption — refusing to serve beats
  // silently dropping admitted state.
  std::string bytes = read_file(path);
  bytes[14] = static_cast<char>(bytes[14] ^ 0x01);  // 12-byte header + 2
  write_file(path, bytes);
  EXPECT_THROW((void)Journal::replay(path), Error);
  EXPECT_THROW(Journal journal(path), Error);
}

TEST(JournalTest, BadMagicIsFatal) {
  const std::string path = temp_journal("badmagic.journal");
  {
    Journal journal(path);
    journal.append("fine");
  }
  std::string bytes = read_file(path);
  bytes[0] = 'X';
  write_file(path, bytes);
  EXPECT_THROW((void)Journal::replay(path), Error);
}

TEST(JournalTest, InjectedWriteFaultRollsBackTheFrame) {
  const std::string path = temp_journal("rollback.journal");
  Journal journal(path);
  journal.append("committed");
  const std::string before = read_file(path);

  fault::configure("serve.journal.write.mid=@1");
  EXPECT_THROW(journal.append("torn by fault"), fault::Injected);
  fault::reset();

  // All-or-nothing: the failed append left no partial frame behind.
  EXPECT_EQ(read_file(path), before);
  journal.append("after recovery");
  const JournalReplay replay = Journal::replay(path);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0], "committed");
  EXPECT_EQ(replay.records[1], "after recovery");
}

TEST(JournalTest, OversizedRecordRefused) {
  const std::string path = temp_journal("oversize.journal");
  Journal journal(path);
  EXPECT_THROW(journal.append(std::string(65 * 1024 * 1024, 'x')), Error);
  // The refusal left the journal clean.
  journal.append("still fine");
  EXPECT_EQ(Journal::replay(path).records.size(), 1u);
}

}  // namespace
}  // namespace hedra::serve
