#include "serve/server.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/strings.h"

namespace hedra::serve {
namespace {

AdmissionConfig test_config() {
  AdmissionConfig config;
  config.platform = model::Platform::parse("4:acc");
  return config;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  for (auto& line : split(text, '\n')) {
    if (!trim(line).empty()) lines.push_back(std::move(line));
  }
  return lines;
}

constexpr const char* kEasyBody = "node v1 5\nendtask\n";

TEST(ServerTest, FullSessionInOrder) {
  std::istringstream in(
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "STATUS\n"
      "LEAVE tau1\n"
      "STATUS\n"
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service);

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_TRUE(starts_with(lines[0], "ADMITTED tau1"));
  EXPECT_NE(lines[1].find("tasks=1"), std::string::npos);
  EXPECT_TRUE(starts_with(lines[2], "OK tau1"));
  EXPECT_NE(lines[3].find("tasks=0"), std::string::npos);
  EXPECT_EQ(lines[4], "OK bye");

  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServerTest, EofEndsTheLoopWithoutQuit) {
  std::istringstream in("STATUS\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service);
  EXPECT_EQ(stats.requests, 1u);
}

TEST(ServerTest, BadRequestsAnswerErrorAndTheLoopSurvives) {
  std::istringstream in(
      "FROBNICATE\n"
      "ADMIT broken period x deadline 1\nendtask\n"
      "LEAVE ghost\n"
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service);
  EXPECT_EQ(stats.errors, 3u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(service.snapshot()->set.size(), 1u);
}

TEST(ServerTest, RejectionsDoNotMutateState) {
  std::istringstream in(
      "ADMIT impossible period 100 deadline 100\n"
      "node a 50\nnode b 50\nnode c 50\nedge a b\nedge b c\nendtask\n"
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(service.snapshot()->set.size(), 0u);
}

TEST(ServerTest, InjectedQueueFaultShedsTheRequest) {
  std::istringstream in(
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  fault::configure("serve.queue.push=@1");
  const ServerStats stats = run_server(in, out, service);
  fault::reset();
  fault::clear_registry();

  EXPECT_EQ(stats.shed, 1u);
  // The injected fault is distinguished from a genuinely full queue.
  EXPECT_EQ(stats.shed_fault, 1u);
  EXPECT_EQ(stats.shed_queue_full, 0u);
  EXPECT_EQ(service.snapshot()->set.size(), 0u);  // never executed
  EXPECT_NE(out.str().find("SHED tau1"), std::string::npos);
}

TEST(ServerTest, InjectedParseFaultIsAnErrorResponse) {
  std::istringstream in(
      "STATUS\n"
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  fault::configure("serve.request.parse=@1");
  const ServerStats stats = run_server(in, out, service);
  fault::reset();
  fault::clear_registry();

  // The faulted parse became an ERROR response; the loop went on to QUIT.
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_NE(out.str().find("ERROR"), std::string::npos);
  EXPECT_NE(out.str().find("OK bye"), std::string::npos);
}

TEST(ServerTest, StatusCarriesQueueAndShedTallies) {
  std::istringstream in("STATUS\nQUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  (void)run_server(in, out, service);
  const auto lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines[0].find("queue="), std::string::npos);
  EXPECT_NE(lines[0].find("shed_full=0"), std::string::npos);
  EXPECT_NE(lines[0].find("shed_fault=0"), std::string::npos);
  EXPECT_NE(lines[0].find("journal_bytes="), std::string::npos);
}

TEST(ServerTest, MetricsVerbScrapesPrometheusTextWithEofTerminator) {
  obs::set_enabled(true);
  obs::reset_values();
  std::istringstream in(
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "METRICS\n"
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service);
  obs::set_enabled(false);

  EXPECT_EQ(stats.requests, 3u);
  const std::string reply = out.str();
  // The scrape block carries the admit counter recorded one line earlier
  // and terminates with the literal sentinel line.
  EXPECT_NE(reply.find("# TYPE hedra_serve_requests counter"),
            std::string::npos);
  EXPECT_NE(reply.find("hedra_serve_admit_admitted 1"), std::string::npos);
  EXPECT_NE(reply.find("\n# EOF\n"), std::string::npos);
  obs::reset_values();
}

TEST(ServerTest, TracedSessionRecordsTheSpanTree) {
  obs::Tracer tracer;
  ServerConfig config;
  config.tracer = &tracer;
  std::istringstream in(
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "STATUS\n"
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  (void)run_server(in, out, service, config);

  const auto traces = tracer.snapshot();
  ASSERT_EQ(traces.size(), 3u);  // ADMIT, STATUS, QUIT

  // The ADMIT trace: the full phase tree, every span closed and nested
  // inside the root "request" interval, phases sequential (span sums to
  // at most the end-to-end latency — the PR's acceptance criterion).
  const obs::RequestTrace& admit = *traces[0];
  EXPECT_EQ(admit.notes().at("verb"), "ADMIT");
  EXPECT_EQ(admit.notes().at("decision"), "ADMITTED");
  EXPECT_EQ(admit.notes().at("task"), "tau1");
  std::vector<std::string> names;
  for (const obs::Span& span : admit.spans()) names.push_back(span.name);
  const std::vector<std::string> expected{
      "request",        "parse",   "queue-wait", "snapshot-build",
      "rta-fixpoint",   "publish"};
  EXPECT_EQ(names, expected);  // no journal span: no journal configured
  const obs::Span& root = admit.spans()[0];
  std::int64_t child_sum = 0;
  for (std::size_t i = 1; i < admit.spans().size(); ++i) {
    const obs::Span& span = admit.spans()[i];
    EXPECT_GE(span.start_ns, root.start_ns) << span.name;
    EXPECT_LE(span.end_ns, root.end_ns) << span.name;
    EXPECT_LE(span.start_ns, span.end_ns) << span.name;
    child_sum += span.end_ns - span.start_ns;
  }
  EXPECT_LE(child_sum, root.end_ns - root.start_ns);

  EXPECT_EQ(traces[1]->notes().at("verb"), "STATUS");
  EXPECT_EQ(traces[2]->notes().at("verb"), "QUIT");

  // The chrome export carries one row (tid) per request; ids are
  // process-global (a shared Tracer outlives server loops) so only their
  // consecutiveness is pinned, not their absolute values.
  EXPECT_EQ(traces[1]->id(), traces[0]->id() + 1);
  EXPECT_EQ(traces[2]->id(), traces[0]->id() + 2);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"tid\":" + std::to_string(traces[0]->id())),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\":" + std::to_string(traces[2]->id())),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rta-fixpoint\""), std::string::npos);
}

TEST(ServerTest, TraceAllocationFaultDropsTheTraceNotTheRequest) {
  obs::Tracer tracer;
  ServerConfig config;
  config.tracer = &tracer;
  std::istringstream in(
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  fault::configure("serve.trace.alloc=@1");
  const ServerStats stats = run_server(in, out, service, config);
  fault::reset();
  fault::clear_registry();

  // The first request (the ADMIT) lost its trace but was served normally.
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(service.snapshot()->set.size(), 1u);
  EXPECT_EQ(tracer.submitted(), 1u);  // only the QUIT trace survived
}

TEST(ServerTest, PerRequestDeadlineDegradesGracefully) {
  ServerConfig config;
  config.request_deadline_sec = 1e-9;
  std::istringstream in(
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service, config);
  // A 1ns budget cannot complete a proof: the answer degrades (PROVISIONAL
  // or a seed REJECT), it never falsely admits.
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(service.snapshot()->set.size(), 0u);
}

}  // namespace
}  // namespace hedra::serve
