#include "serve/server.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/fault.h"
#include "util/strings.h"

namespace hedra::serve {
namespace {

AdmissionConfig test_config() {
  AdmissionConfig config;
  config.platform = model::Platform::parse("4:acc");
  return config;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  for (auto& line : split(text, '\n')) {
    if (!trim(line).empty()) lines.push_back(std::move(line));
  }
  return lines;
}

constexpr const char* kEasyBody = "node v1 5\nendtask\n";

TEST(ServerTest, FullSessionInOrder) {
  std::istringstream in(
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "STATUS\n"
      "LEAVE tau1\n"
      "STATUS\n"
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service);

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_TRUE(starts_with(lines[0], "ADMITTED tau1"));
  EXPECT_NE(lines[1].find("tasks=1"), std::string::npos);
  EXPECT_TRUE(starts_with(lines[2], "OK tau1"));
  EXPECT_NE(lines[3].find("tasks=0"), std::string::npos);
  EXPECT_EQ(lines[4], "OK bye");

  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServerTest, EofEndsTheLoopWithoutQuit) {
  std::istringstream in("STATUS\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service);
  EXPECT_EQ(stats.requests, 1u);
}

TEST(ServerTest, BadRequestsAnswerErrorAndTheLoopSurvives) {
  std::istringstream in(
      "FROBNICATE\n"
      "ADMIT broken period x deadline 1\nendtask\n"
      "LEAVE ghost\n"
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service);
  EXPECT_EQ(stats.errors, 3u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(service.snapshot()->set.size(), 1u);
}

TEST(ServerTest, RejectionsDoNotMutateState) {
  std::istringstream in(
      "ADMIT impossible period 100 deadline 100\n"
      "node a 50\nnode b 50\nnode c 50\nedge a b\nedge b c\nendtask\n"
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(service.snapshot()->set.size(), 0u);
}

TEST(ServerTest, InjectedQueueFaultShedsTheRequest) {
  std::istringstream in(
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  fault::configure("serve.queue.push=@1");
  const ServerStats stats = run_server(in, out, service);
  fault::reset();
  fault::clear_registry();

  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(service.snapshot()->set.size(), 0u);  // never executed
  EXPECT_NE(out.str().find("SHED tau1"), std::string::npos);
}

TEST(ServerTest, InjectedParseFaultIsAnErrorResponse) {
  std::istringstream in(
      "STATUS\n"
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  fault::configure("serve.request.parse=@1");
  const ServerStats stats = run_server(in, out, service);
  fault::reset();
  fault::clear_registry();

  // The faulted parse became an ERROR response; the loop went on to QUIT.
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_NE(out.str().find("ERROR"), std::string::npos);
  EXPECT_NE(out.str().find("OK bye"), std::string::npos);
}

TEST(ServerTest, PerRequestDeadlineDegradesGracefully) {
  ServerConfig config;
  config.request_deadline_sec = 1e-9;
  std::istringstream in(
      "ADMIT tau1 period 1000 deadline 1000\n" + std::string(kEasyBody) +
      "QUIT\n");
  std::ostringstream out;
  AdmissionService service(test_config());
  const ServerStats stats = run_server(in, out, service, config);
  // A 1ns budget cannot complete a proof: the answer degrades (PROVISIONAL
  // or a seed REJECT), it never falsely admits.
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(service.snapshot()->set.size(), 0u);
}

}  // namespace
}  // namespace hedra::serve
