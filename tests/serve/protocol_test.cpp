#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hedra::serve {
namespace {

std::optional<Request> parse_one(const std::string& text) {
  std::istringstream in(text);
  return read_request(in);
}

TEST(ProtocolTest, AdmitWithBody) {
  std::istringstream in(
      "ADMIT tau1 period 100 deadline 90\n"
      "node v1 5\n"
      "node v2 9 offload\n"
      "edge v1 v2\n"
      "endtask\n"
      "STATUS\n");
  const auto request = read_request(in);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->kind, Request::Kind::kAdmit);
  EXPECT_EQ(request->name, "tau1");
  EXPECT_EQ(request->period, 100);
  EXPECT_EQ(request->deadline, 90);
  EXPECT_EQ(request->dag_text,
            "node v1 5\nnode v2 9 offload\nedge v1 v2\n");
  // The stream resynchronised: the next request parses cleanly.
  const auto next = read_request(in);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->kind, Request::Kind::kStatus);
}

TEST(ProtocolTest, SimpleCommands) {
  EXPECT_EQ(parse_one("LEAVE tau3\n")->kind, Request::Kind::kLeave);
  EXPECT_EQ(parse_one("LEAVE tau3\n")->name, "tau3");
  EXPECT_EQ(parse_one("STATUS\n")->kind, Request::Kind::kStatus);
  EXPECT_EQ(parse_one("QUIT\n")->kind, Request::Kind::kQuit);
  EXPECT_EQ(parse_one(""), std::nullopt);  // clean EOF
  EXPECT_EQ(parse_one("\n\n# comment\n"), std::nullopt);
}

TEST(ProtocolTest, UnknownAndMalformedCommands) {
  EXPECT_EQ(parse_one("FROBNICATE x\n")->kind, Request::Kind::kInvalid);
  EXPECT_EQ(parse_one("LEAVE\n")->kind, Request::Kind::kInvalid);
  EXPECT_EQ(parse_one("LEAVE two names\n")->kind, Request::Kind::kInvalid);
  // Binary garbage is an error, never UB.
  const auto garbage = parse_one("\x01\x02\xfe\xff\n");
  ASSERT_TRUE(garbage.has_value());
  EXPECT_EQ(garbage->kind, Request::Kind::kInvalid);
}

TEST(ProtocolTest, MalformedAdmitHeaderDrainsItsBody) {
  std::istringstream in(
      "ADMIT tau1 period abc deadline 90\n"
      "node v1 5\n"
      "endtask\n"
      "QUIT\n");
  const auto bad = read_request(in);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->kind, Request::Kind::kInvalid);
  // The body lines were drained — the next read is QUIT, not "node v1 5".
  const auto next = read_request(in);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->kind, Request::Kind::kQuit);
}

TEST(ProtocolTest, TrailingTokensRejected) {
  std::istringstream in(
      "ADMIT tau1 period 100 deadline 90 extra\n"
      "endtask\n");
  EXPECT_EQ(read_request(in)->kind, Request::Kind::kInvalid);
}

TEST(ProtocolTest, TruncatedAdmitIsAnExplicitError) {
  std::istringstream in(
      "ADMIT tau1 period 100 deadline 90\n"
      "node v1 5\n");  // EOF before endtask
  const auto request = read_request(in);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->kind, Request::Kind::kInvalid);
  EXPECT_NE(request->error.find("truncated"), std::string::npos);
}

TEST(ProtocolTest, OversizedBodyRefusedButResynchronised) {
  std::ostringstream script;
  script << "ADMIT tau1 period 100 deadline 90\n";
  for (std::size_t i = 0; i <= kMaxBodyLines; ++i) script << "node x 1\n";
  script << "endtask\nSTATUS\n";
  std::istringstream in(script.str());
  const auto request = read_request(in);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->kind, Request::Kind::kInvalid);
  EXPECT_TRUE(request->dag_text.empty());  // stopped accumulating
  const auto next = read_request(in);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->kind, Request::Kind::kStatus);
}

TEST(ProtocolTest, FormatReplyShapes) {
  AdmissionReply admitted;
  admitted.decision = Decision::kAdmitted;
  admitted.task = "tau1";
  admitted.cores = 2;
  admitted.response = Frac(7, 2);
  admitted.detail = "proven by exact fixpoint";
  EXPECT_EQ(format_reply(admitted),
            "ADMITTED tau1 cores=2 response=7/2 proven by exact fixpoint");

  AdmissionReply rejected;
  rejected.decision = Decision::kRejected;
  rejected.task = "tau2";
  rejected.detail = "deadline exceeded";
  EXPECT_EQ(format_reply(rejected), "REJECTED tau2 deadline exceeded");

  AdmissionReply error;
  error.decision = Decision::kError;
  error.detail = "unknown command";
  EXPECT_EQ(format_reply(error), "ERROR unknown command");
}

}  // namespace
}  // namespace hedra::serve
