#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "stats/series.h"
#include "util/error.h"

namespace hedra::stats {
namespace {

TEST(DescriptiveTest, SummaryOfKnownSample) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);
}

TEST(DescriptiveTest, SingleElement) {
  const Summary s = summarize({3.5});
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(DescriptiveTest, OddMedian) {
  EXPECT_DOUBLE_EQ(summarize({3.0, 1.0, 2.0}).median, 2.0);
}

TEST(DescriptiveTest, EmptySampleThrows) {
  EXPECT_THROW(summarize({}), Error);
  EXPECT_THROW(mean({}), Error);
}

TEST(DescriptiveTest, Percentiles) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_THROW(percentile(v, 101), Error);
  EXPECT_THROW(percentile({}, 50), Error);
}

TEST(DescriptiveTest, PercentageChange) {
  EXPECT_DOUBLE_EQ(percentage_change(120.0, 100.0), 20.0);
  EXPECT_DOUBLE_EQ(percentage_change(80.0, 100.0), -20.0);
  EXPECT_THROW(percentage_change(1.0, 0.0), Error);
}

TEST(SeriesTest, AccumulatesPerKey) {
  Series s("demo");
  s.add(0.1, 10.0);
  s.add(0.1, 20.0);
  s.add(0.2, 30.0);
  EXPECT_EQ(s.xs(), (std::vector<double>{0.1, 0.2}));
  EXPECT_DOUBLE_EQ(s.at(0.1).mean, 15.0);
  EXPECT_DOUBLE_EQ(s.at(0.2).mean, 30.0);
  EXPECT_THROW(s.at(0.3), Error);
}

TEST(SeriesTest, MeanPointsAscending) {
  Series s;
  s.add(0.3, 1.0);
  s.add(0.1, 2.0);
  s.add(0.2, 3.0);
  const auto points = s.mean_points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].first, 0.1);
  EXPECT_DOUBLE_EQ(points[2].first, 0.3);
}

TEST(SeriesTest, GlobalMaxAndArgmax) {
  Series s;
  s.add(0.1, -5.0);
  s.add(0.2, 2.0);
  s.add(0.2, 8.0);
  s.add(0.3, 4.0);
  EXPECT_DOUBLE_EQ(s.global_max(), 8.0);
  EXPECT_DOUBLE_EQ(s.argmax_mean(), 0.2);  // mean 5.0 beats 4.0
}

TEST(SeriesTest, FirstSignChangeDetectsCrossover) {
  Series s;
  s.add(0.01, -3.0);
  s.add(0.05, -1.0);
  s.add(0.10, 2.0);
  s.add(0.20, 5.0);
  EXPECT_DOUBLE_EQ(s.first_sign_change(), 0.10);
}

TEST(SeriesTest, NoSignChangeIsNaN) {
  Series s;
  s.add(0.1, 1.0);
  s.add(0.2, 2.0);
  EXPECT_TRUE(std::isnan(s.first_sign_change()));
}

TEST(SeriesTest, EmptySeriesGuards) {
  const Series s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.global_max(), Error);
  EXPECT_THROW(s.argmax_mean(), Error);
}

}  // namespace
}  // namespace hedra::stats
