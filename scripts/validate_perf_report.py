#!/usr/bin/env python3
"""Validates the JSON emitted by bench/perf_report (schema
hedra-perf-report-v1).  CI runs `perf_report --quick --out <file>` and then
this script, so the benchmark harness can't silently rot.

Usage: validate_perf_report.py <report.json> [--expect-benchmarks N]
                               [--require-kernel NAME]...

--require-kernel fails the validation unless a benchmark with that exact
name is present — CI uses it to pin the kernels a PR promises (e.g. the
fig12_sweep taskset kernel) in both the quick run and the committed
baseline.
"""

import json
import sys

REQUIRED_TOP = {"schema", "quick", "single_threaded", "benchmarks"}
REQUIRED_BENCH = {"name", "unit", "value", "iterations"}
KNOWN_UNITS = {"ms", "us_per_sim", "us_per_dag"}


def fail(message: str) -> None:
    print(f"validate_perf_report: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: validate_perf_report.py <report.json>")
    path = sys.argv[1]
    expected = None
    if "--expect-benchmarks" in sys.argv:
        expected = int(sys.argv[sys.argv.index("--expect-benchmarks") + 1])
    required = [
        sys.argv[i + 1]
        for i, arg in enumerate(sys.argv)
        if arg == "--require-kernel"
    ]

    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)

    missing = REQUIRED_TOP - report.keys()
    if missing:
        fail(f"missing top-level keys: {sorted(missing)}")
    if report["schema"] != "hedra-perf-report-v1":
        fail(f"unexpected schema {report['schema']!r}")
    if not isinstance(report["quick"], bool):
        fail("'quick' must be a boolean")
    if report["single_threaded"] is not True:
        fail("perf reports must be measured single-threaded")

    benchmarks = report["benchmarks"]
    if not isinstance(benchmarks, list) or not benchmarks:
        fail("'benchmarks' must be a non-empty list")
    names = set()
    for bench in benchmarks:
        missing = REQUIRED_BENCH - bench.keys()
        if missing:
            fail(f"benchmark {bench.get('name', '?')!r} missing {sorted(missing)}")
        if bench["name"] in names:
            fail(f"duplicate benchmark name {bench['name']!r}")
        names.add(bench["name"])
        if bench["unit"] not in KNOWN_UNITS:
            fail(f"benchmark {bench['name']!r} has unknown unit {bench['unit']!r}")
        if not isinstance(bench["value"], (int, float)) or bench["value"] < 0:
            fail(f"benchmark {bench['name']!r} has invalid value {bench['value']!r}")
        if not isinstance(bench["iterations"], int) or bench["iterations"] < 1:
            fail(f"benchmark {bench['name']!r} has invalid iterations")
        for key, value in bench.get("counters", {}).items():
            if not isinstance(value, (int, float)):
                fail(f"benchmark {bench['name']!r} counter {key!r} not numeric")
    if expected is not None and len(benchmarks) != expected:
        fail(f"expected {expected} benchmarks, found {len(benchmarks)}")
    for kernel in required:
        if kernel not in names:
            fail(f"required kernel {kernel!r} is missing")

    print(f"validate_perf_report: OK ({len(benchmarks)} benchmarks)")


if __name__ == "__main__":
    main()
