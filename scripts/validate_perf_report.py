#!/usr/bin/env python3
"""Validates the JSON emitted by bench/perf_report (schema
hedra-perf-report-v2; the v1 schema of the committed pre-PR-6 baselines is
still accepted).  CI runs `perf_report --quick --out <file>` and then this
script, so the benchmark harness can't silently rot.

Usage: validate_perf_report.py <report.json> [--expect-benchmarks N]
                               [--require-kernel NAME]...

--require-kernel fails the validation unless a benchmark with that exact
name is present — CI uses it to pin the kernels a PR promises (e.g. the
fig12_sweep taskset kernel) in both the quick run and the committed
baseline.
"""

import json
import sys

# v1 reports are single-threaded by construction; v2 (PR 6) replaces the
# "single_threaded" flag with the worker-thread count used by the parallel
# kernels plus the machine's hardware concurrency.
REQUIRED_TOP = {
    "hedra-perf-report-v1": {"schema", "quick", "single_threaded",
                             "benchmarks"},
    "hedra-perf-report-v2": {"schema", "quick", "jobs",
                             "hardware_concurrency", "benchmarks"},
}
REQUIRED_BENCH = {"name", "unit", "value", "iterations"}
KNOWN_UNITS = {"ms", "us_per_sim", "us_per_dag", "us_per_decision"}


def fail(message: str) -> None:
    print(f"validate_perf_report: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: validate_perf_report.py <report.json>")
    path = sys.argv[1]
    expected = None
    if "--expect-benchmarks" in sys.argv:
        expected = int(sys.argv[sys.argv.index("--expect-benchmarks") + 1])
    required = [
        sys.argv[i + 1]
        for i, arg in enumerate(sys.argv)
        if arg == "--require-kernel"
    ]

    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)

    schema = report.get("schema")
    if schema not in REQUIRED_TOP:
        fail(f"unexpected schema {schema!r}")
    missing = REQUIRED_TOP[schema] - report.keys()
    if missing:
        fail(f"missing top-level keys: {sorted(missing)}")
    if not isinstance(report["quick"], bool):
        fail("'quick' must be a boolean")
    if schema == "hedra-perf-report-v1":
        if report["single_threaded"] is not True:
            fail("v1 perf reports must be measured single-threaded")
    else:
        for key in ("jobs", "hardware_concurrency"):
            if not isinstance(report[key], int) or report[key] < 1:
                fail(f"{key!r} must be a positive integer")

    benchmarks = report["benchmarks"]
    if not isinstance(benchmarks, list) or not benchmarks:
        fail("'benchmarks' must be a non-empty list")
    names = set()
    for bench in benchmarks:
        missing = REQUIRED_BENCH - bench.keys()
        if missing:
            fail(f"benchmark {bench.get('name', '?')!r} missing {sorted(missing)}")
        if bench["name"] in names:
            fail(f"duplicate benchmark name {bench['name']!r}")
        names.add(bench["name"])
        if bench["unit"] not in KNOWN_UNITS:
            fail(f"benchmark {bench['name']!r} has unknown unit {bench['unit']!r}")
        if not isinstance(bench["value"], (int, float)) or bench["value"] < 0:
            fail(f"benchmark {bench['name']!r} has invalid value {bench['value']!r}")
        if not isinstance(bench["iterations"], int) or bench["iterations"] < 1:
            fail(f"benchmark {bench['name']!r} has invalid iterations")
        for key, value in bench.get("counters", {}).items():
            if not isinstance(value, (int, float)):
                fail(f"benchmark {bench['name']!r} counter {key!r} not numeric")
    if expected is not None and len(benchmarks) != expected:
        fail(f"expected {expected} benchmarks, found {len(benchmarks)}")
    for kernel in required:
        if kernel not in names:
            fail(f"required kernel {kernel!r} is missing")

    print(f"validate_perf_report: OK ({len(benchmarks)} benchmarks)")


if __name__ == "__main__":
    main()
