#!/usr/bin/env python3
"""hedra_lint: project-specific soundness & determinism linter.

The analysis layers promise properties that generic tools cannot check —
exact-rational arithmetic in every soundness-critical bound, bit-identical
deterministic output, reproducible entropy, fault seams at every serve-layer
allocation.  This linter codifies those contracts as mechanical rules over
the C++ tree and fails CI when one is violated.

Rules (each finding prints ``file:line: [rule-id] message``):

  float-in-bound       No ``double``/``float`` in soundness-critical
                       translation units (src/analysis, src/exact,
                       src/model, src/taskset).  Response-time bounds must
                       be exact rationals (Frac) or integers; a stray
                       double in a comparison silently voids the paper's
                       guarantees.
  unordered-container  No ``std::unordered_map``/``std::unordered_set`` in
                       deterministic-output paths (all of src/).  Iteration
                       order is hash/seed dependent; the bit-identical
                       goldens (traces, figure stdout, batch hashes) forbid
                       it.
  address-ordered      No ``std::map``/``std::set`` keyed on a raw pointer:
                       iteration order would depend on allocator addresses,
                       which vary run to run.
  raw-entropy          No ``rand()``/``srand()``/``std::random_device``/
                       ``std::mt19937`` outside util/rng: every random draw
                       must flow through the seeded fork-chain Rng or runs
                       stop being reproducible.
  wall-clock           No wall-clock reads (``system_clock``, ``time()``,
                       ``gettimeofday``, ``clock_gettime``, ...) outside
                       util/deadline: budgets use the monotonic clock via
                       util::Deadline, and results must never depend on the
                       calendar.
  raw-mutex            No ``std::mutex``/``std::lock_guard``/
                       ``std::unique_lock``/``std::condition_variable``
                       outside util/thread_annotations.h: all locking goes
                       through the Clang-thread-safety-annotated wrappers
                       so ``-Wthread-safety`` sees every acquisition.
  fault-seam           Every allocation seam in src/serve (``new``,
                       ``make_shared``, ``make_unique``, ``reserve``) must
                       have a ``HEDRA_FAULT(...)`` site within 3 lines: the
                       robustness CI injects faults at every seam, and an
                       unseamed allocation is an untested failure path.
  nodiscard-outcome    Function declarations in headers returning
                       ``util::Outcome`` or ``Frac`` must be
                       ``[[nodiscard]]``: a silently dropped Outcome is a
                       swallowed budget-exhaustion, a dropped Frac a
                       discarded bound.
  stale-allow          An ``allow`` tag that suppresses nothing is an
                       error: stale tags rot into blanket exemptions.

Suppression: a finding is waived by an annotated allow tag with a reason,
either trailing on the offending line or alone on the line directly above::

    double ratio;  // hedra-lint: allow(float-in-bound, reporting only)
    // hedra-lint: allow(raw-entropy, seeds the fork chain root)
    std::random_device seed_source;

Tags without a reason are rejected; tags that suppress nothing fail with
``stale-allow`` (run after removing the offending code to see them).

Fixture mode (``--fixtures DIR``) self-tests the linter: each fixture file
declares its own expectations (``// hedra-lint: expect(rule-id)`` once per
expected finding, or ``// hedra-lint: expect-clean``) plus the path the
rules should pretend it lives at (``// hedra-lint: pretend-path(...)``),
and the run fails unless every fixture produces exactly its declared
findings.

Exit codes: 0 clean, 1 findings/fixture mismatch, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path

# --------------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------------

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}


def _in_dirs(path: str, *roots: str) -> bool:
    return any(path.startswith(root) for root in roots)


@dataclass(frozen=True)
class Rule:
    rule_id: str
    pattern: re.Pattern
    message: str
    applies: object  # Callable[[str], bool] on repo-relative posix path


RULES = [
    Rule(
        "float-in-bound",
        re.compile(r"\b(?:double|float)\b"),
        "floating point in a soundness-critical translation unit; bounds "
        "must use exact Frac/integer arithmetic",
        lambda p: _in_dirs(
            p, "src/analysis/", "src/exact/", "src/model/", "src/taskset/"
        ),
    ),
    Rule(
        "unordered-container",
        re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b"),
        "hash containers have seed/size-dependent iteration order; "
        "deterministic-output paths must use ordered containers",
        lambda p: p.startswith("src/"),
    ),
    Rule(
        "address-ordered",
        re.compile(r"\bstd::(?:map|set)\s*<\s*[^,<>]*\*"),
        "container keyed on a raw pointer iterates in allocator-address "
        "order, which varies run to run",
        lambda p: p.startswith("src/"),
    ),
    Rule(
        "raw-entropy",
        re.compile(
            r"\b(?:s?rand\s*\(|std::random_device\b|std::mt19937(?:_64)?\b|"
            r"drand48\s*\(|random\s*\(\s*\))"
        ),
        "uncontrolled entropy source; all randomness flows through the "
        "seeded util/rng fork chain",
        lambda p: p.startswith("src/") and not p.startswith("src/util/rng"),
    ),
    Rule(
        "wall-clock",
        re.compile(
            r"\b(?:std::chrono::system_clock\b|system_clock\b|"
            r"gettimeofday\s*\(|clock_gettime\s*\(|CLOCK_REALTIME\b|"
            r"std::time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)|"
            r"localtime\s*\(|gmtime\s*\(|std::clock\s*\()"
        ),
        "wall-clock read; deadlines use the monotonic clock through "
        "util::Deadline and results must not depend on the calendar",
        lambda p: p.startswith("src/")
        and not p.startswith("src/util/deadline"),
    ),
    Rule(
        "raw-mutex",
        re.compile(
            r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
            r"lock_guard|unique_lock|shared_lock|scoped_lock|"
            r"condition_variable(?:_any)?)\b|\bpthread_mutex"
        ),
        "raw standard-library lock; use the Clang-TSA-annotated "
        "util::Mutex/MutexLock/CondVar from util/thread_annotations.h so "
        "-Wthread-safety sees the acquisition",
        lambda p: p.startswith("src/")
        and p != "src/util/thread_annotations.h",
    ),
    Rule(
        "obs-metric-site",
        re.compile(r"\b(?:hedra::)?obs::(?:counter|gauge|histogram)\s*\("),
        "direct metrics-registry call outside src/obs; record through the "
        "HEDRA_METRIC* macros so disabled telemetry stays zero-cost and "
        "sites stay greppable",
        lambda p: p.startswith("src/") and not p.startswith("src/obs/"),
    ),
    Rule(
        "obs-clock",
        re.compile(
            r"\bstd::chrono\b|\bsteady_clock\b|\bsystem_clock\b|"
            r"\bhigh_resolution_clock\b|::now\s*\(|\.now\s*\("
        ),
        "clock read inside the telemetry layer; src/obs takes all "
        "timestamps through util::monotonic_now_ns() so traces share the "
        "deadline clock and never touch the calendar",
        lambda p: p.startswith("src/obs/"),
    ),
]

FAULT_SEAM_RULE_ID = "fault-seam"
FAULT_SEAM_PATTERN = re.compile(
    r"\bnew\b|\bstd::make_shared\b|\bstd::make_unique\b|\.reserve\s*\("
)
FAULT_SITE_PATTERN = re.compile(r"\bHEDRA_FAULT\s*\(")
FAULT_SEAM_WINDOW = 3  # lines of context in which a seam must appear

NODISCARD_RULE_ID = "nodiscard-outcome"
NODISCARD_DECL = re.compile(
    r"^\s*(?:static\s+|constexpr\s+|virtual\s+|inline\s+|friend\s+)*"
    r"(?:util::|hedra::)?(?:Outcome|Frac)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\("
)
NODISCARD_MARK = re.compile(r"\[\[nodiscard\]\]")

STALE_ALLOW_RULE_ID = "stale-allow"
BAD_TAG_RULE_ID = "bad-allow-tag"

ALL_RULE_IDS = (
    [r.rule_id for r in RULES]
    + [FAULT_SEAM_RULE_ID, NODISCARD_RULE_ID, STALE_ALLOW_RULE_ID,
       BAD_TAG_RULE_ID]
)

ALLOW_TAG = re.compile(
    r"//\s*hedra-lint:\s*allow\(\s*(?P<rule>[a-z-]+)\s*(?:,\s*(?P<reason>[^)]*))?\)"
)
PRETEND_PATH = re.compile(r"//\s*hedra-lint:\s*pretend-path\(\s*([^)]+?)\s*\)")
EXPECT_TAG = re.compile(r"//\s*hedra-lint:\s*expect\(\s*([a-z-]+)\s*\)")
EXPECT_CLEAN = re.compile(r"//\s*hedra-lint:\s*expect-clean\b")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


@dataclass
class AllowTag:
    line: int  # 1-based line the tag sits on
    rule_id: str
    reason: str
    used: bool = False

    def covers(self, finding_line: int) -> bool:
        # A tag waives findings on its own line (trailing comment) or on
        # the line directly below (standalone comment line).
        return finding_line in (self.line, self.line + 1)


# --------------------------------------------------------------------------
# C++ comment/string stripping
# --------------------------------------------------------------------------


def strip_code(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Rules must only fire on code; ``double`` in a doc comment or "time(" in
    a log string is not a violation.  Replaced characters become spaces so
    column/line arithmetic stays valid.
    """
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW_STRING = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                if i >= 1 and text[i - 1] == "R" and (
                    i < 2 or not (text[i - 2].isalnum() or text[i - 2] == "_")
                ):
                    m = re.match(r'"([^(\s]*)\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = RAW_STRING
                        out.append('"')
                        i += 1
                        continue
                state = STRING
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHAR
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = NORMAL
                out.append('"')
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == CHAR:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = NORMAL
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # RAW_STRING
            if text.startswith(raw_delim, i):
                state = NORMAL
                out.append(raw_delim)
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Per-file linting
# --------------------------------------------------------------------------


def collect_allow_tags(raw_lines: list[str]) -> tuple[list[AllowTag], list[Finding]]:
    tags: list[AllowTag] = []
    errors: list[Finding] = []
    for lineno, line in enumerate(raw_lines, start=1):
        m = ALLOW_TAG.search(line)
        if not m:
            # A malformed hedra-lint directive must not pass silently.
            if re.search(r"//\s*hedra-lint:\s*allow", line):
                errors.append(
                    Finding(
                        "",
                        lineno,
                        BAD_TAG_RULE_ID,
                        "malformed allow tag; expected "
                        "'// hedra-lint: allow(rule-id, reason)'",
                    )
                )
            continue
        rule = m.group("rule")
        reason = (m.group("reason") or "").strip()
        if rule not in ALL_RULE_IDS:
            errors.append(
                Finding("", lineno, BAD_TAG_RULE_ID,
                        f"allow tag names unknown rule '{rule}'")
            )
            continue
        if not reason:
            errors.append(
                Finding("", lineno, BAD_TAG_RULE_ID,
                        f"allow({rule}) tag is missing its reason")
            )
            continue
        tags.append(AllowTag(lineno, rule, reason))
    return tags, errors


def lint_file(path: Path, rel: str) -> list[Finding]:
    """Lints one file; `rel` is the path rules are evaluated against."""
    try:
        raw = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(rel, 1, "io-error", f"unreadable: {e}")]

    raw_lines = raw.splitlines()
    code_lines = strip_code(raw).splitlines()
    # splitlines of stripped text matches raw line count by construction.
    tags, tag_errors = collect_allow_tags(raw_lines)
    findings: list[Finding] = []
    for err in tag_errors:
        err.path = rel
        findings.append(err)

    def emit(lineno: int, rule_id: str, message: str) -> None:
        for tag in tags:
            if tag.rule_id == rule_id and tag.covers(lineno):
                tag.used = True
                return
        findings.append(Finding(rel, lineno, rule_id, message))

    # Regex rules.
    for rule in RULES:
        if not rule.applies(rel):
            continue
        for lineno, line in enumerate(code_lines, start=1):
            if rule.pattern.search(line):
                emit(lineno, rule.rule_id, rule.message)

    # fault-seam: allocation sites in serve/ need a HEDRA_FAULT nearby.
    if rel.startswith("src/serve/"):
        for lineno, line in enumerate(code_lines, start=1):
            if not FAULT_SEAM_PATTERN.search(line):
                continue
            lo = max(0, lineno - 1 - FAULT_SEAM_WINDOW)
            hi = min(len(code_lines), lineno + FAULT_SEAM_WINDOW)
            window = code_lines[lo:hi]
            if not any(FAULT_SITE_PATTERN.search(w) for w in window):
                emit(
                    lineno,
                    FAULT_SEAM_RULE_ID,
                    "allocation without a HEDRA_FAULT seam within "
                    f"{FAULT_SEAM_WINDOW} lines; the robustness CI cannot "
                    "inject a failure here",
                )

    # nodiscard-outcome: header declarations returning Outcome/Frac.
    if rel.startswith("src/") and path.suffix in {".h", ".hpp"}:
        for lineno, line in enumerate(code_lines, start=1):
            m = NODISCARD_DECL.match(line)
            if not m or m.group("name") == "operator":
                continue
            prev = code_lines[lineno - 2] if lineno >= 2 else ""
            if NODISCARD_MARK.search(line) or NODISCARD_MARK.search(prev):
                continue
            emit(
                lineno,
                NODISCARD_RULE_ID,
                f"'{m.group('name')}' returns Outcome/Frac without "
                "[[nodiscard]]; a dropped result is a swallowed "
                "budget-exhaustion or bound",
            )

    # stale-allow: every tag must have earned its keep.
    for tag in tags:
        if not tag.used:
            findings.append(
                Finding(
                    rel,
                    tag.line,
                    STALE_ALLOW_RULE_ID,
                    f"allow({tag.rule_id}) suppresses nothing — remove the "
                    "stale tag",
                )
            )
    return findings


# --------------------------------------------------------------------------
# Tree + fixture drivers
# --------------------------------------------------------------------------


def discover_files(root: Path, compile_commands: Path | None) -> list[Path]:
    files = sorted(
        p
        for p in (root / "src").rglob("*")
        if p.suffix in CXX_SUFFIXES and p.is_file()
    )
    if compile_commands is not None:
        try:
            entries = json.loads(compile_commands.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"hedra_lint: cannot read {compile_commands}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        listed = {Path(e["file"]).resolve() for e in entries}
        missing = [
            f for f in files
            if f.suffix == ".cpp" and f.resolve() not in listed
        ]
        if missing:
            names = ", ".join(str(m) for m in missing[:5])
            print(
                "hedra_lint: compile_commands.json does not cover: "
                f"{names} — lint scope and build scope have diverged",
                file=sys.stderr,
            )
            sys.exit(2)
    return files


def lint_tree(root: Path, compile_commands: Path | None) -> int:
    findings: list[Finding] = []
    for path in discover_files(root, compile_commands):
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_file(path, rel))
    for f in findings:
        print(f.render())
    if findings:
        print(f"hedra_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def run_fixtures(fixture_dir: Path) -> int:
    fixtures = sorted(
        p for p in fixture_dir.rglob("*") if p.suffix in CXX_SUFFIXES
    )
    if not fixtures:
        print(f"hedra_lint: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2
    failures = 0
    for path in fixtures:
        raw = path.read_text(encoding="utf-8")
        pretend = PRETEND_PATH.search(raw)
        expected = [m.group(1) for m in EXPECT_TAG.finditer(raw)]
        expect_clean = EXPECT_CLEAN.search(raw) is not None
        if not pretend:
            print(f"{path}: fixture missing a pretend-path(...) directive")
            failures += 1
            continue
        if bool(expected) == expect_clean:
            print(f"{path}: fixture needs either expect(...) tags or "
                  "expect-clean, not both/neither")
            failures += 1
            continue
        rel = pretend.group(1)
        got = sorted(f.rule_id for f in lint_file(path, rel))
        want = sorted(expected)
        if got != want:
            print(
                f"{path}: expected findings {want or '(clean)'}, "
                f"got {got or '(clean)'}"
            )
            for f in lint_file(path, rel):
                print(f"    {f.render()}")
            failures += 1
        else:
            print(f"{path}: ok ({len(got)} expected finding(s))")
    if failures:
        print(f"hedra_lint: {failures} fixture(s) misbehaved",
              file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="hedra_lint",
        description="soundness/determinism linter for the hedra tree",
    )
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--compile-commands", type=Path, default=None,
        help="compile_commands.json to cross-check the lint scope against",
    )
    parser.add_argument(
        "--fixtures", type=Path, default=None,
        help="self-test mode: lint fixture files against their declared "
        "expectations instead of the tree",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args()

    if args.list_rules:
        for rule_id in ALL_RULE_IDS:
            print(rule_id)
        return 0
    if args.fixtures is not None:
        return run_fixtures(args.fixtures)
    return lint_tree(args.root.resolve(), args.compile_commands)


if __name__ == "__main__":
    sys.exit(main())
