#!/usr/bin/env python3
"""Validates hedra's telemetry dumps: the hedra-metrics-v1 JSON emitted by
`admissiond --metrics-out` / obs::metrics_json(), and (with --trace) the
chrome://tracing JSON emitted by `admissiond --trace-out`.

Usage: validate_metrics.py <metrics.json> [--trace <trace.json>]
                           [--require-metric NAME]...

The metrics check pins the v1 schema: every counter/gauge is an integer,
every histogram has monotone boundaries, per-bucket counts summing to
`count`, and a non-negative `sum_ns`.  --require-metric fails unless the
named metric exists somewhere in the dump — CI uses it to pin the metric
sites a PR promises.

The trace check pins the span contract of serve/server.cpp: every event is
a complete ("X") event with non-negative ts/dur; spans sharing a tid (one
tid per request) nest inside that request's root "request" span; and the
children of each root sum to no more than the root's duration plus a small
per-span slack for clock quantisation — the acceptance criterion that
span trees actually add up to the end-to-end latency.
"""

import json
import sys

# Spans recorded inside one ADMIT request (serve/server.cpp + admission.cpp).
ADMIT_SPANS = {
    "parse",
    "queue-wait",
    "snapshot-build",
    "rta-fixpoint",
    "journal-append+fsync",
    "publish",
}

# Clock-resolution slack per child span when checking that children fit the
# root interval (ns).  Timestamps are exact integers from one monotonic
# clock, so this only absorbs the begin/end call overhead itself.
SLACK_NS_PER_SPAN = 50_000


def fail(message: str) -> None:
    print(f"validate_metrics: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_metrics(path: str, required: list) -> int:
    with open(path, encoding="utf-8") as handle:
        dump = json.load(handle)

    if dump.get("schema") != "hedra-metrics-v1":
        fail(f"unexpected schema {dump.get('schema')!r}")
    missing = {"schema", "enabled", "counters", "gauges",
               "histograms"} - dump.keys()
    if missing:
        fail(f"missing top-level keys: {sorted(missing)}")
    if not isinstance(dump["enabled"], bool):
        fail("'enabled' must be a boolean")

    names = set()
    for name, value in dump["counters"].items():
        names.add(name)
        if not isinstance(value, int) or value < 0:
            fail(f"counter {name!r} has invalid value {value!r}")
    for name, value in dump["gauges"].items():
        if name in names:
            fail(f"metric {name!r} appears under two kinds")
        names.add(name)
        if not isinstance(value, int):
            fail(f"gauge {name!r} has invalid value {value!r}")
    for name, hist in dump["histograms"].items():
        if name in names:
            fail(f"metric {name!r} appears under two kinds")
        names.add(name)
        missing = {"boundaries_ns", "buckets", "sum_ns", "count"} - hist.keys()
        if missing:
            fail(f"histogram {name!r} missing {sorted(missing)}")
        bounds = hist["boundaries_ns"]
        buckets = hist["buckets"]
        if len(buckets) != len(bounds) + 1:
            fail(f"histogram {name!r}: {len(buckets)} buckets for "
                 f"{len(bounds)} boundaries (want boundaries+1)")
        if any(b <= 0 for b in bounds) or sorted(bounds) != bounds:
            fail(f"histogram {name!r} boundaries not positive-monotone")
        if any(not isinstance(b, int) or b < 0 for b in buckets):
            fail(f"histogram {name!r} has invalid bucket counts")
        if sum(buckets) != hist["count"]:
            fail(f"histogram {name!r}: buckets sum to {sum(buckets)}, "
                 f"count says {hist['count']}")
        if not isinstance(hist["sum_ns"], int) or hist["sum_ns"] < 0:
            fail(f"histogram {name!r} has invalid sum_ns")

    for name in required:
        if name not in names:
            fail(f"required metric {name!r} is missing")
    return len(names)


def check_trace(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        trace = json.load(handle)

    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("'traceEvents' must be a list")

    by_tid = {}
    for event in events:
        for key in ("name", "ph", "pid", "tid", "ts", "dur"):
            if key not in event:
                fail(f"event {event!r} missing {key!r}")
        if event["ph"] != "X":
            fail(f"event {event['name']!r} is not a complete ('X') event")
        if float(event["ts"]) < 0 or float(event["dur"]) < 0:
            fail(f"event {event['name']!r} has negative ts/dur")
        by_tid.setdefault(event["tid"], []).append(event)

    requests = 0
    for tid, spans in sorted(by_tid.items()):
        roots = [s for s in spans if s["name"] == "request"]
        if len(roots) != 1:
            fail(f"tid {tid}: expected exactly one root 'request' span, "
                 f"found {len(roots)}")
        root = roots[0]
        requests += 1
        start = float(root["ts"])
        end = start + float(root["dur"])
        slack_us = SLACK_NS_PER_SPAN / 1000.0
        children = [s for s in spans if s is not root]
        child_sum = 0.0
        for child in children:
            c_start = float(child["ts"])
            c_end = c_start + float(child["dur"])
            if c_start < start - slack_us or c_end > end + slack_us:
                fail(f"tid {tid}: span {child['name']!r} "
                     f"[{c_start}, {c_end}] escapes its request "
                     f"[{start}, {end}]")
            if child["name"] not in ADMIT_SPANS:
                fail(f"tid {tid}: unexpected span name {child['name']!r}")
            child_sum += float(child["dur"])
        # Phase spans tile the request sequentially (no overlap by
        # construction), so their sum is bounded by the root duration.
        budget = float(root["dur"]) + slack_us * max(1, len(children))
        if child_sum > budget:
            fail(f"tid {tid}: child spans sum to {child_sum}us, exceeding "
                 f"the request's {root['dur']}us (+slack {budget}us)")
    return requests


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: validate_metrics.py <metrics.json> "
             "[--trace <trace.json>] [--require-metric NAME]...")
    path = sys.argv[1]
    trace_path = None
    if "--trace" in sys.argv:
        trace_path = sys.argv[sys.argv.index("--trace") + 1]
    required = [
        sys.argv[i + 1]
        for i, arg in enumerate(sys.argv)
        if arg == "--require-metric"
    ]

    metric_count = check_metrics(path, required)
    message = f"validate_metrics: OK ({metric_count} metrics"
    if trace_path is not None:
        requests = check_trace(trace_path)
        message += f", {requests} traced requests"
    print(message + ")")


if __name__ == "__main__":
    main()
