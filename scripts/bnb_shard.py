#!/usr/bin/env python3
"""Shard a bnb_batch run across processes and merge the per-shard JSON.

The bnb_batch CLI regenerates the full instance batch from the seed in
every process and solves only `index % shard_count == shard_index`, so
shards need no coordination: this driver just launches one process per
shard (each typically given all cores of its machine via --jobs), waits,
and merges the shard files into one document covering the whole batch.

Usage:
  # Run 4 shards locally and merge:
  scripts/bnb_shard.py run --binary build/bnb_batch \\
      --shards 4 --count 40 --m 2 --min-nodes 3 --max-nodes 20 \\
      --seed 42 --jobs 0 --out batch.json

  # Merge shard files produced elsewhere (e.g. one per fleet job):
  scripts/bnb_shard.py merge shard_*.json --out batch.json

Merging verifies the shards agree on the batch definition and together
cover every instance index exactly once.

Uses only the Python standard library.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

SCHEMA = "hedra-bnb-batch-v1"
MERGED_SCHEMA = "hedra-bnb-batch-merged-v1"
BATCH_KEYS = ("m", "min_nodes", "max_nodes", "ratio", "count", "seed")


def fail(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(1)


def load_shard(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: expected schema {SCHEMA!r}, got {doc.get('schema')!r}")
    for key in BATCH_KEYS + ("shard_index", "shard_count", "instances"):
        if key not in doc:
            fail(f"{path}: missing key {key!r}")
    return doc


def merge_shards(docs: list[dict]) -> dict:
    base = docs[0]
    for doc in docs[1:]:
        for key in BATCH_KEYS:
            if doc[key] != base[key]:
                fail(
                    f"shards disagree on {key!r}: "
                    f"{base[key]!r} vs {doc[key]!r}"
                )
        if doc["shard_count"] != base["shard_count"]:
            fail("shards disagree on shard_count")

    seen_shards = set()
    instances: dict[int, dict] = {}
    for doc in docs:
        shard = doc["shard_index"]
        if shard in seen_shards:
            fail(f"duplicate shard_index {shard}")
        seen_shards.add(shard)
        for row in doc["instances"]:
            index = row["index"]
            if index in instances:
                fail(f"instance {index} appears in more than one shard")
            if index % doc["shard_count"] != shard:
                fail(f"instance {index} does not belong to shard {shard}")
            instances[index] = row

    expected = set(range(base["count"]))
    missing = sorted(expected - instances.keys())
    if missing:
        fail(f"batch incomplete: missing instances {missing}")
    extra = sorted(instances.keys() - expected)
    if extra:
        fail(f"unexpected instance indices {extra}")

    merged = {key: base[key] for key in BATCH_KEYS}
    merged["schema"] = MERGED_SCHEMA
    merged["solver"] = base.get("solver", {})
    merged["shard_count"] = base["shard_count"]
    merged["instances"] = [instances[i] for i in sorted(instances)]
    return merged


def summarize(merged: dict) -> str:
    rows = merged["instances"]
    proven = sum(1 for r in rows if r["proven"])
    nodes = sum(r["nodes_explored"] for r in rows)
    ms = sum(r["ms"] for r in rows)
    return (
        f"{len(rows)} instances (m={merged['m']}, "
        f"n in [{merged['min_nodes']}, {merged['max_nodes']}], "
        f"seed {merged['seed']}): {proven} proven optimal, "
        f"{nodes} nodes explored, {ms / 1000.0:.1f} s solver time"
    )


def write_merged(docs: list[dict], out: str | None) -> None:
    merged = merge_shards(docs)
    text = json.dumps(merged, indent=2) + "\n"
    if out:
        Path(out).write_text(text)
        print(f"merged result written to {out}", file=sys.stderr)
    else:
        print(text, end="")
    print(summarize(merged), file=sys.stderr)


def cmd_run(args: argparse.Namespace) -> None:
    binary = Path(args.binary)
    if not binary.exists():
        fail(f"bnb_batch binary not found at {binary}")
    with tempfile.TemporaryDirectory(prefix="bnb_shard_") as tmp:
        shard_files = []
        procs = []
        for shard in range(args.shards):
            shard_file = Path(tmp) / f"shard_{shard}.json"
            shard_files.append(shard_file)
            cmd = [
                str(binary),
                "--m", str(args.m),
                "--min-nodes", str(args.min_nodes),
                "--max-nodes", str(args.max_nodes),
                "--ratio", str(args.ratio),
                "--count", str(args.count),
                "--seed", str(args.seed),
                "--solver-nodes", str(args.solver_nodes),
                "--time-limit", str(args.time_limit),
                "--jobs", str(args.jobs),
                "--shard-index", str(shard),
                "--shard-count", str(args.shards),
                "--out", str(shard_file),
            ]
            procs.append(subprocess.Popen(cmd))
        failures = [
            shard for shard, proc in enumerate(procs) if proc.wait() != 0
        ]
        if failures:
            fail(f"shard processes failed: {failures}")
        write_merged([load_shard(path) for path in shard_files], args.out)


def cmd_merge(args: argparse.Namespace) -> None:
    if not args.files:
        fail("no shard files given")
    write_merged([load_shard(Path(f)) for f in args.files], args.out)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="launch shard processes and merge")
    run.add_argument("--binary", default="build/bnb_batch",
                     help="path to the bnb_batch executable")
    run.add_argument("--shards", type=int, default=2,
                     help="number of shard processes")
    run.add_argument("--m", type=int, default=2)
    run.add_argument("--min-nodes", type=int, default=3)
    run.add_argument("--max-nodes", type=int, default=20)
    run.add_argument("--ratio", type=float, default=0.35)
    run.add_argument("--count", type=int, default=40)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--solver-nodes", type=int, default=5_000_000)
    run.add_argument("--time-limit", type=float, default=300.0)
    run.add_argument("--jobs", type=int, default=1,
                     help="threads per solve inside each shard process")
    run.add_argument("--out", default=None,
                     help="merged JSON path (default: stdout)")
    run.set_defaults(func=cmd_run)

    merge = sub.add_parser("merge", help="merge existing shard JSON files")
    merge.add_argument("files", nargs="*", help="per-shard JSON files")
    merge.add_argument("--out", default=None,
                       help="merged JSON path (default: stdout)")
    merge.set_defaults(func=cmd_merge)

    args = parser.parse_args()
    if args.command == "run" and args.shards <= 0:
        fail("--shards must be positive")
    args.func(args)


if __name__ == "__main__":
    main()
