/// \file adas_pipeline.cpp
/// A realistic heterogeneous workload of the kind the paper's introduction
/// motivates: an advanced driver-assistance (ADAS) perception pipeline on an
/// embedded host-plus-GPU platform (NVIDIA Tegra-class).  The convolutional
/// object detector is offloaded to the GPU; lane detection, free-space
/// estimation and tracking stay on the host cores.
///
/// The example answers the integrator's questions:
///   1. Is the 100 ms frame deadline provably met on 2/4/8/16 cores?
///   2. How much tighter is the heterogeneous analysis than the baseline?
///   3. What happens as the detector (C_off) grows with bigger models?
///
/// WCETs are in tenths of a millisecond.

#include <iostream>

#include "analysis/schedulability.h"
#include "graph/critical_path.h"
#include "model/task.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace hedra;

struct Pipeline {
  graph::Dag dag;
  graph::NodeId detector;
};

Pipeline build_pipeline(graph::Time detector_wcet) {
  Pipeline p;
  graph::Dag& g = p.dag;
  const auto capture = g.add_node(20, graph::NodeKind::kHost, "capture");
  const auto debayer = g.add_node(35, graph::NodeKind::kHost, "debayer");
  const auto rectify = g.add_node(40, graph::NodeKind::kHost, "rectify");
  // Perception fans out after rectification.
  p.detector =
      g.add_node(detector_wcet, graph::NodeKind::kOffload, "cnn_detect");
  const auto lanes = g.add_node(120, graph::NodeKind::kHost, "lane_detect");
  const auto freespace =
      g.add_node(150, graph::NodeKind::kHost, "free_space");
  const auto odometry = g.add_node(90, graph::NodeKind::kHost, "odometry");
  // Detections feed tracking; everything fuses before planning.
  const auto tracker = g.add_node(60, graph::NodeKind::kHost, "tracker");
  const auto fusion = g.add_node(45, graph::NodeKind::kHost, "fusion");
  const auto plan = g.add_node(55, graph::NodeKind::kHost, "plan");
  g.add_edge(capture, debayer);
  g.add_edge(debayer, rectify);
  g.add_edge(rectify, p.detector);
  g.add_edge(rectify, lanes);
  g.add_edge(rectify, freespace);
  g.add_edge(rectify, odometry);
  g.add_edge(p.detector, tracker);
  g.add_edge(tracker, fusion);
  g.add_edge(lanes, fusion);
  g.add_edge(freespace, fusion);
  g.add_edge(odometry, fusion);
  g.add_edge(fusion, plan);
  return p;
}

}  // namespace

int main() {
  constexpr graph::Time kFramePeriod = 1000;   // 100 ms @ 0.1 ms ticks
  constexpr graph::Time kFrameDeadline = 1000;

  std::cout << "== ADAS perception pipeline on host + GPU ==\n\n";

  // Question 1+2: schedulability across host sizes for the 30 ms detector.
  {
    const Pipeline p = build_pipeline(300);
    std::cout << "pipeline: " << p.dag.num_nodes() << " stages, vol = "
              << p.dag.volume() << " ticks, len = "
              << graph::critical_path_length(p.dag)
              << " ticks, C_off = " << p.dag.wcet(p.detector)
              << " (GPU detector)\n\n";
    const model::DagTask task(p.dag, kFramePeriod, kFrameDeadline, "adas");
    TextTable table({"m", "R_hom (Eq.1)", "R_het (Thm.1)", "scenario",
                     "deadline 1000", "improvement"});
    for (const int m : {2, 4, 8, 16}) {
      const auto hom = analysis::check_schedulability(
          task, m, analysis::AnalysisKind::kHomogeneous);
      const auto het = analysis::check_schedulability(
          task, m, analysis::AnalysisKind::kHeterogeneous);
      const double gain = 100.0 *
                          (hom.bound.to_double() - het.bound.to_double()) /
                          het.bound.to_double();
      table.add_row(
          {std::to_string(m), format_double(hom.bound.to_double(), 1),
           format_double(het.bound.to_double(), 1),
           to_string(het.scenario),
           het.schedulable ? (hom.schedulable ? "both pass" : "only R_het")
                           : (hom.schedulable ? "only R_hom" : "both fail"),
           format_percent(gain, 1)});
    }
    std::cout << table.render() << "\n";
  }

  // Question 3: growing the detector model.
  {
    std::cout << "scaling the GPU detector (m = 4):\n";
    TextTable table({"detector WCET", "C_off/vol", "R_hom", "R_het",
                     "scenario", "meets 1000?"});
    for (const graph::Time wcet : {100, 200, 300, 500, 800, 1200}) {
      const Pipeline p = build_pipeline(wcet);
      const model::DagTask task(p.dag, 2000, kFrameDeadline, "adas");
      const auto analysis = analysis::analyze_heterogeneous(p.dag, 4);
      table.add_row(
          {std::to_string(wcet),
           format_double(100.0 * static_cast<double>(wcet) /
                             static_cast<double>(p.dag.volume()),
                         1) +
               "%",
           format_double(analysis.r_hom.to_double(), 1),
           format_double(analysis.r_het.to_double(), 1),
           to_string(analysis.scenario),
           analysis.r_het <= Frac(kFrameDeadline) ? "yes" : "NO"});
    }
    std::cout << table.render()
              << "\nNote how the scenario migrates S1 -> S2.2 -> S2.1 as the "
                 "offloaded share grows — exactly Figure 8's story.\n";
  }
  return 0;
}
