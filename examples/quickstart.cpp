/// \file quickstart.cpp
/// hedra in five minutes: build a heterogeneous DAG task, run the
/// homogeneous baseline (Eq. 1), transform it (Algorithm 1), run the
/// heterogeneous analysis (Theorem 1), and check schedulability.
///
/// The task graph is the paper's running example (Figure 1): five host
/// nodes plus one node offloaded to an accelerator (GPU/FPGA/DSP).

#include <iostream>

#include "analysis/naive.h"
#include "analysis/schedulability.h"
#include "graph/critical_path.h"
#include "model/task.h"
#include "sim/gantt.h"
#include "sim/scheduler.h"

int main() {
  using namespace hedra;

  // 1. Build the task graph: nodes carry WCETs; one node is offloaded.
  graph::Dag dag;
  const auto v1 = dag.add_node(1, graph::NodeKind::kHost, "v1");
  const auto v2 = dag.add_node(4, graph::NodeKind::kHost, "v2");
  const auto v3 = dag.add_node(6, graph::NodeKind::kHost, "v3");
  const auto v4 = dag.add_node(2, graph::NodeKind::kHost, "v4");
  const auto v5 = dag.add_node(1, graph::NodeKind::kHost, "v5");
  const auto voff = dag.add_node(4, graph::NodeKind::kOffload, "vOff");
  dag.add_edge(v1, v2);
  dag.add_edge(v1, v3);
  dag.add_edge(v1, v4);
  dag.add_edge(v4, voff);
  dag.add_edge(v2, v5);
  dag.add_edge(v3, v5);
  dag.add_edge(voff, v5);

  const int m = 2;  // host cores (plus one accelerator, implicit)
  std::cout << "Task graph: " << dag.num_nodes() << " nodes, "
            << dag.num_edges() << " edges\n"
            << "vol(G) = " << dag.volume()
            << ", len(G) = " << graph::critical_path_length(dag) << "\n\n";

  // 2. Homogeneous baseline (Eq. 1) — sound but ignores the accelerator.
  const Frac r_hom = analysis::rta_homogeneous(dag, m);
  std::cout << "R_hom  (Eq. 1, m=" << m << ")          = " << r_hom << "\n";

  // 3. What NOT to do: subtracting C_off without a guarantee (§3.2).
  std::cout << "naive subtraction (UNSOUND) = "
            << analysis::rta_naive_subtraction(dag, m)
            << "   <- violated by the schedule below\n";

  // 4. The paper's analysis: transform, classify, bound (Theorem 1).
  const auto analysis = analysis::analyze_heterogeneous(dag, m);
  std::cout << "R_het  (Theorem 1, scenario " << to_string(analysis.scenario)
            << ") = " << analysis.r_het << "\n\n";

  // 5. Watch both graphs execute under the GOMP-style breadth-first
  //    work-conserving scheduler.
  sim::SimConfig config;
  config.cores = m;
  const auto trace_orig = sim::simulate(dag, config);
  std::cout << "breadth-first schedule of tau (makespan "
            << trace_orig.makespan() << ", exceeds the naive bound):\n"
            << sim::render_gantt(trace_orig, dag) << "\n";
  const auto& transformed = analysis.transform.transformed;
  const auto trace_trans = sim::simulate(transformed, config);
  std::cout << "breadth-first schedule of tau' (makespan "
            << trace_trans.makespan() << " <= R_het = " << analysis.r_het
            << "):\n"
            << sim::render_gantt(trace_trans, transformed) << "\n";

  // 6. Schedulability verdict for a deadline of 12.
  const model::DagTask task(dag, /*period=*/20, /*deadline=*/12, "quickstart");
  const auto hom_report = analysis::check_schedulability(
      task, m, analysis::AnalysisKind::kHomogeneous);
  const auto het_report = analysis::check_schedulability(
      task, m, analysis::AnalysisKind::kHeterogeneous);
  std::cout << "deadline 12: homogeneous analysis says "
            << (hom_report.schedulable ? "SCHEDULABLE" : "NOT schedulable")
            << ", heterogeneous analysis says "
            << (het_report.schedulable ? "SCHEDULABLE" : "NOT schedulable")
            << "\n";
  return 0;
}
