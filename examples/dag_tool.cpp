/// \file dag_tool.cpp
/// Command-line front end: load a task graph from a text file (see
/// graph/dag_io.h for the format), validate it against the paper's system
/// model, run both analyses, and optionally emit the transformed graph and
/// DOT renderings.
///
///   dag_tool --file graph.dag --m 4
///   dag_tool --file graph.dag --m 8 --dot out.dot --transformed out.dag
///
/// Example input file:
///   node v1 1
///   node v2 4
///   node acc 6 offload
///   node v4 1
///   edge v1 v2
///   edge v1 acc
///   edge v2 v4
///   edge acc v4

#include <fstream>
#include <iostream>

#include "analysis/rta_heterogeneous.h"
#include "graph/critical_path.h"
#include "graph/dag_io.h"
#include "graph/dot.h"
#include "graph/validate.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace hedra;
  ArgParser parser("dag_tool", "analyze a heterogeneous DAG task from a file");
  const auto* file = parser.add_string("file", "", "input task graph (.dag)");
  const auto* m_opt = parser.add_int("m", 4, "host cores");
  const auto* dot_out = parser.add_string("dot", "", "write DOT of G' here");
  const auto* trans_out =
      parser.add_string("transformed", "", "write transformed graph here");
  try {
    if (!parser.parse(argc, argv)) return 0;
    if (file->empty()) {
      std::cerr << parser.usage();
      return 1;
    }
    const graph::Dag dag = graph::load_dag_file(*file);
    const int m = static_cast<int>(*m_opt);

    const auto issues = graph::validate(dag, graph::heterogeneous_rules());
    if (!issues.empty()) {
      std::cerr << "input graph violates the system model:\n";
      for (const auto& issue : issues) std::cerr << "  - " << issue << "\n";
      return 1;
    }

    std::cout << "graph: " << dag.num_nodes() << " nodes, " << dag.num_edges()
              << " edges, vol = " << dag.volume()
              << ", len = " << graph::critical_path_length(dag) << "\n";
    const auto analysis = analysis::analyze_heterogeneous(dag, m);
    std::cout << analysis::explain(analysis, m);

    if (!trans_out->empty()) {
      graph::save_dag_file(analysis.transform.transformed, *trans_out);
      std::cout << "transformed graph written to " << *trans_out << "\n";
    }
    if (!dot_out->empty()) {
      graph::DotOptions options;
      for (const auto parent : analysis.transform.gpar.to_parent) {
        options.highlight.push_back(parent);
      }
      std::ofstream out(*dot_out);
      out << graph::to_dot(analysis.transform.transformed, options);
      std::cout << "DOT written to " << *dot_out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
