/// \file dag_tool.cpp
/// Command-line front end: load a task graph from a text file (see
/// graph/dag_io.h for the format), validate it against the paper's system
/// model, run both analyses, and optionally emit the transformed graph and
/// DOT renderings.
///
///   dag_tool --file graph.dag --m 4
///   dag_tool --file graph.dag --m 8 --dot out.dot --transformed out.dag
///   dag_tool --file multi.dag --platform 4:gpu,dsp
///   dag_tool --file multi.dag --platform "4:gpu*2,dsp"
///
/// `--platform m[:name1,name2,...]` switches to the heterogeneous Platform
/// model (m host cores + K named accelerator classes; a `*units` suffix
/// gives a class several execution units, e.g. `4:gpu*2,dsp` = a 2-unit
/// GPU and a single-unit DSP): the graph may place any number of nodes on
/// any listed device (`offload` = device 1, `offload:2` = device 2, ...),
/// and the report shows the K-device chain bound R_plat with its
/// per-device term-by-term derivation (vol_d/n_d terms and the weighted
/// chain when some n_d > 1).  When the graph also fits the paper's model
/// (exactly one offload node on a single-unit device 1), Theorem 1 and its
/// derivation are printed alongside for comparison.
///
/// Example input file:
///   node v1 1
///   node v2 4
///   node acc 6 offload
///   node v4 1
///   edge v1 v2
///   edge v1 acc
///   edge v2 v4
///   edge acc v4

#include <fstream>
#include <iostream>

#include "analysis/platform_rta.h"
#include "analysis/rta_heterogeneous.h"
#include "graph/critical_path.h"
#include "graph/dag_io.h"
#include "graph/dot.h"
#include "graph/validate.h"
#include "model/platform.h"
#include "util/cli.h"

namespace {

/// The --platform path: structural validation (any offload population),
/// device-compatibility check, and the per-device R_plat derivation.
int run_platform_report(const hedra::graph::Dag& dag,
                        const hedra::model::Platform& platform) {
  using namespace hedra;
  graph::ValidationRules rules = graph::heterogeneous_rules();
  rules.required_offload_count = -1;  // any number, any device
  auto issues = graph::validate(dag, rules);
  const auto placement = model::check_supports(platform, dag);
  issues.insert(issues.end(), placement.begin(), placement.end());
  if (!issues.empty()) {
    std::cerr << "input graph violates the platform model:\n";
    for (const auto& issue : issues) std::cerr << "  - " << issue << "\n";
    return 1;
  }

  std::cout << "graph: " << dag.num_nodes() << " nodes, " << dag.num_edges()
            << " edges, vol = " << dag.volume()
            << ", len = " << graph::critical_path_length(dag) << "\n"
            << "platform: " << platform.describe() << "\n";
  const auto analysis = analysis::analyze_platform(dag, platform);
  std::cout << analysis::explain(analysis);

  // When the task also fits the paper's single-accelerator model, show
  // Theorem 1 next to the chain bound.
  if (platform.num_devices() == 1 && !platform.has_multi_units() &&
      dag.offload_nodes().size() == 1 &&
      graph::is_valid(dag, graph::heterogeneous_rules())) {
    std::cout << "\n";
    const auto het = analysis::analyze_heterogeneous(dag, platform.cores);
    std::cout << analysis::explain(het, platform.cores);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hedra;
  ArgParser parser("dag_tool", "analyze a heterogeneous DAG task from a file");
  const auto* file = parser.add_string("file", "", "input task graph (.dag)");
  const auto* m_opt = parser.add_int(
      "m", 4, "host cores (ignored with --platform, whose spec carries m)");
  const auto* platform_opt = parser.add_string(
      "platform", "",
      "platform spec m[:dev1,dev2,...], each device optionally dev*units "
      "and/or dev@speedup (e.g. 4:gpu*2@3.0,dsp@1.5); enables the "
      "multi-device report");
  const auto* dot_out = parser.add_string(
      "dot", "", "write DOT here (of G'; of the input graph with --platform)");
  const auto* trans_out = parser.add_string(
      "transformed", "",
      "write transformed graph here (single-accelerator mode only)");
  try {
    if (!parser.parse(argc, argv)) return 0;
    if (file->empty()) {
      std::cerr << parser.usage();
      return 1;
    }
    const graph::Dag dag = graph::load_dag_file(*file);
    const int m = static_cast<int>(*m_opt);

    if (!platform_opt->empty()) {
      if (!trans_out->empty()) {
        std::cerr << "error: --transformed applies Algorithm 1, which is "
                     "defined for the single-accelerator model only; it "
                     "cannot be combined with --platform\n";
        return 1;
      }
      const auto platform = model::Platform::parse(*platform_opt);
      const int status = run_platform_report(dag, platform);
      if (status != 0) return status;
      if (!dot_out->empty()) {
        std::ofstream out(*dot_out);
        out << graph::to_dot(dag);
        std::cout << "DOT written to " << *dot_out << "\n";
      }
      return 0;
    }

    const auto issues = graph::validate(dag, graph::heterogeneous_rules());
    if (!issues.empty()) {
      std::cerr << "input graph violates the system model:\n";
      for (const auto& issue : issues) std::cerr << "  - " << issue << "\n";
      return 1;
    }

    std::cout << "graph: " << dag.num_nodes() << " nodes, " << dag.num_edges()
              << " edges, vol = " << dag.volume()
              << ", len = " << graph::critical_path_length(dag) << "\n";
    const auto analysis = analysis::analyze_heterogeneous(dag, m);
    std::cout << analysis::explain(analysis, m);

    if (!trans_out->empty()) {
      graph::save_dag_file(analysis.transform.transformed, *trans_out);
      std::cout << "transformed graph written to " << *trans_out << "\n";
    }
    if (!dot_out->empty()) {
      graph::DotOptions options;
      for (const auto parent : analysis.transform.gpar.to_parent) {
        options.highlight.push_back(parent);
      }
      std::ofstream out(*dot_out);
      out << graph::to_dot(analysis.transform.transformed, options);
      std::cout << "DOT written to " << *dot_out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
