/// \file paper_figures.cpp
/// Regenerates the paper's illustrative figures as terminal artefacts:
///
///   Figure 1(a)  the running-example DAG          -> DOT (fig1a.dot)
///   Figure 1(b)  best-case schedule (response 8)  -> ASCII Gantt
///   Figure 1(c)  worst-case breadth-first (12)    -> ASCII Gantt
///   Figure 2(a)  transformed DAG, len = 10        -> DOT (fig2a.dot)
///   Figure 2(b)  schedule of the transformed DAG  -> ASCII Gantt
///   Figure 3     transformation walk-through      -> DOT (fig3a/fig3b.dot)
///
/// DOT files are written to the directory given by --out (default ".").
/// Render with: dot -Tpng fig1a.dot -o fig1a.png

#include <fstream>
#include <iostream>

#include "analysis/naive.h"
#include "analysis/rta_heterogeneous.h"
#include "graph/critical_path.h"
#include "graph/dot.h"
#include "sim/gantt.h"
#include "sim/scheduler.h"
#include "util/cli.h"

namespace {

using namespace hedra;

struct Example {
  graph::Dag dag;
  graph::NodeId voff;
};

Example running_example() {
  Example ex;
  const auto v1 = ex.dag.add_node(1, graph::NodeKind::kHost, "v1");
  const auto v2 = ex.dag.add_node(4, graph::NodeKind::kHost, "v2");
  const auto v3 = ex.dag.add_node(6, graph::NodeKind::kHost, "v3");
  const auto v4 = ex.dag.add_node(2, graph::NodeKind::kHost, "v4");
  const auto v5 = ex.dag.add_node(1, graph::NodeKind::kHost, "v5");
  ex.voff = ex.dag.add_node(4, graph::NodeKind::kOffload);
  ex.dag.add_edge(v1, v2);
  ex.dag.add_edge(v1, v3);
  ex.dag.add_edge(v1, v4);
  ex.dag.add_edge(v4, ex.voff);
  ex.dag.add_edge(v2, v5);
  ex.dag.add_edge(v3, v5);
  ex.dag.add_edge(ex.voff, v5);
  return ex;
}

graph::Dag fig3_graph() {
  graph::Dag dag;
  const auto add = [&](const char* name, graph::Time wcet,
                       graph::NodeKind kind = graph::NodeKind::kHost) {
    return dag.add_node(wcet, kind, name);
  };
  const auto v1 = add("v1", 1);
  const auto v2 = add("v2", 2);
  const auto v3 = add("v3", 3);
  const auto v4 = add("v4", 2);
  const auto v5 = add("v5", 2);
  const auto v6 = add("v6", 1);
  const auto v7 = add("v7", 4);
  const auto v8 = add("v8", 2);
  const auto v9 = add("v9", 3);
  const auto v10 = add("v10", 1);
  const auto v11 = add("v11", 2);
  const auto voff = add("vOff", 5, graph::NodeKind::kOffload);
  dag.add_edge(v1, v2);
  dag.add_edge(v1, v3);
  dag.add_edge(v3, v7);
  dag.add_edge(v3, v8);
  dag.add_edge(v3, v9);
  dag.add_edge(v8, voff);
  dag.add_edge(v9, voff);
  dag.add_edge(v8, v11);
  dag.add_edge(v2, v4);
  dag.add_edge(v2, v5);
  dag.add_edge(v4, v6);
  dag.add_edge(v5, v6);
  dag.add_edge(v6, v10);
  dag.add_edge(v7, v10);
  dag.add_edge(v11, v10);
  dag.add_edge(voff, v10);
  return dag;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out.good()) throw Error("cannot write " + path);
  out << content;
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("paper_figures",
                   "regenerate the paper's illustrative figures");
  const auto* out_dir = parser.add_string("out", ".", "output directory");
  try {
    if (!parser.parse(argc, argv)) return 0;

    const Example ex = running_example();
    const int m = 2;

    // Figure 1(a).
    write_file(*out_dir + "/fig1a.dot", graph::to_dot(ex.dag));
    std::cout << "Figure 1(a): len(G) = "
              << graph::critical_path_length(ex.dag)
              << ", vol(G) = " << ex.dag.volume()
              << ", R_hom = " << analysis::rta_homogeneous(ex.dag, m)
              << ", naive (unsound) = "
              << analysis::rta_naive_subtraction(ex.dag, m) << "\n\n";

    // Figure 1(b): the best case — critical-path-first overlaps v_off.
    sim::SimConfig best;
    best.cores = m;
    best.policy = sim::Policy::kCriticalPathFirst;
    const auto trace_best = sim::simulate(ex.dag, best);
    std::cout << "Figure 1(b) best-case scheduling (response "
              << trace_best.makespan() << "):\n"
              << sim::render_gantt(trace_best, ex.dag) << "\n";

    // Figure 1(c): the worst case — breadth-first leaves the host idle.
    sim::SimConfig worst;
    worst.cores = m;
    worst.policy = sim::Policy::kBreadthFirst;
    const auto trace_worst = sim::simulate(ex.dag, worst);
    std::cout << "Figure 1(c) worst-case scheduling (response "
              << trace_worst.makespan()
              << " — exceeds the naive bound of 11):\n"
              << sim::render_gantt(trace_worst, ex.dag) << "\n";

    // Figure 2: the transformed DAG.
    const auto analysis = analysis::analyze_heterogeneous(ex.dag, m);
    graph::DotOptions highlight;
    for (const auto parent : analysis.transform.gpar.to_parent) {
      highlight.highlight.push_back(parent);
    }
    highlight.highlight_label = "GPar";
    write_file(*out_dir + "/fig2a.dot",
               graph::to_dot(analysis.transform.transformed, highlight));
    std::cout << "Figure 2(a): len(G') = " << analysis.len_transformed
              << ", scenario " << to_string(analysis.scenario)
              << ", R_het = " << analysis.r_het << "\n\n";
    const auto trace_trans =
        sim::simulate(analysis.transform.transformed, worst);
    std::cout << "Figure 2(b) scheduling of the transformed DAG (response "
              << trace_trans.makespan() << "):\n"
              << sim::render_gantt(trace_trans,
                                   analysis.transform.transformed)
              << "\n";

    // Figure 3: transformation walk-through on the 12-node example.
    const graph::Dag f3 = fig3_graph();
    write_file(*out_dir + "/fig3a.dot", graph::to_dot(f3));
    const auto f3t = analysis::transform_for_offload(f3);
    graph::DotOptions f3_options;
    for (const auto parent : f3t.gpar.to_parent) {
      f3_options.highlight.push_back(parent);
    }
    write_file(*out_dir + "/fig3b.dot",
               graph::to_dot(f3t.transformed, f3_options));
    std::cout << "Figure 3: " << f3t.edges_removed << " edges re-routed, "
              << f3t.edges_added << " added; |GPar| = "
              << f3t.gpar.dag.num_nodes() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
