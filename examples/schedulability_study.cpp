/// \file schedulability_study.cpp
/// Acceptance-ratio study: out of N random heterogeneous DAG tasks, how many
/// are provably schedulable as the deadline tightens?  This is the classic
/// schedulability-test comparison plot and shows the practical value of the
/// paper's analysis: R_het admits task sets that the homogeneous baseline
/// rejects, especially for large offloaded shares.
///
/// Runs on the exp::Runner engine: each task is analysed exactly once (all
/// deadline tightnesses reuse the same bounds) and the per-task analyses fan
/// out over --jobs worker threads.

#include <iostream>
#include <vector>

#include "exp/runner.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hedra;
  ArgParser parser("schedulability_study",
                   "acceptance ratio of R_hom vs R_het vs best-of");
  const auto* tasks = parser.add_int("tasks", 200, "random tasks per cell");
  const auto* cores = parser.add_int("m", 4, "host cores");
  const auto* ratio = parser.add_real("coff", 0.25, "C_off / vol target");
  const auto* seed = parser.add_int("seed", 42, "RNG seed");
  const auto* jobs = parser.add_int(
      "jobs", 0, "worker threads (0 = all hardware threads)");
  try {
    if (!parser.parse(argc, argv)) return 0;

    exp::SweepPoint point;
    point.batch.params.min_nodes = 50;
    point.batch.params.max_nodes = 250;
    point.batch.coff_ratio = *ratio;
    point.batch.count = static_cast<int>(*tasks);
    point.batch.seed = static_cast<std::uint64_t>(*seed);
    point.cores = {static_cast<int>(*cores)};
    point.ratio = *ratio;
    const int m = point.cores.front();

    struct Bounds {
      Frac r_hom, r_het;
      graph::Time len = 0;
    };
    exp::Runner runner(static_cast<int>(*jobs));
    const auto cells = runner.sweep(
        std::vector<exp::SweepPoint>{point},
        [](analysis::AnalysisCache& cache, int cores_m) {
          return Bounds{cache.r_hom(cores_m), cache.r_het(cores_m),
                        cache.len_original()};
        },
        [](const exp::SweepPoint&, int, const std::vector<Bounds>& samples) {
          return samples;
        });
    const std::vector<Bounds>& bounds = cells.front();

    std::cout << "== Acceptance ratio, m = " << m << ", C_off/vol = "
              << format_double(100.0 * *ratio, 0) << "%, " << *tasks
              << " random tasks ==\n\n";

    // Deadline = tightness * len(G): tightness 1 is the absolute floor for
    // any platform; large tightness approaches vol-dominated feasibility.
    TextTable table({"D / len(G)", "R_hom accepts", "R_het accepts",
                     "best-of accepts"});
    for (const double tightness :
         {1.1, 1.3, 1.5, 1.8, 2.2, 2.8, 3.5, 4.5, 6.0}) {
      int hom_ok = 0;
      int het_ok = 0;
      int best_ok = 0;
      for (const Bounds& b : bounds) {
        const Frac deadline(
            static_cast<graph::Time>(tightness * static_cast<double>(b.len)));
        if (b.r_hom <= deadline) ++hom_ok;
        if (b.r_het <= deadline) ++het_ok;
        if (frac_min(b.r_hom, b.r_het) <= deadline) ++best_ok;
      }
      const double n = static_cast<double>(bounds.size());
      table.add_row({format_double(tightness, 1),
                     format_double(100.0 * hom_ok / n, 1) + "%",
                     format_double(100.0 * het_ok / n, 1) + "%",
                     format_double(100.0 * best_ok / n, 1) + "%"});
    }
    std::cout << table.render()
              << "\nbest-of dominates both tests by construction; the gap "
                 "between the R_hom and R_het columns is the paper's "
                 "contribution in schedulability terms.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
