/// \file schedulability_study.cpp
/// Acceptance-ratio study: out of N random heterogeneous DAG tasks, how many
/// are provably schedulable as the deadline tightens?  This is the classic
/// schedulability-test comparison plot and shows the practical value of the
/// paper's analysis: R_het admits task sets that the homogeneous baseline
/// rejects, especially for large offloaded shares.

#include <iostream>
#include <vector>

#include "analysis/schedulability.h"
#include "exp/experiment.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hedra;
  ArgParser parser("schedulability_study",
                   "acceptance ratio of R_hom vs R_het vs best-of");
  const auto* tasks = parser.add_int("tasks", 200, "random tasks per cell");
  const auto* cores = parser.add_int("m", 4, "host cores");
  const auto* ratio = parser.add_real("coff", 0.25, "C_off / vol target");
  const auto* seed = parser.add_int("seed", 42, "RNG seed");
  try {
    if (!parser.parse(argc, argv)) return 0;

    exp::BatchConfig batch_config;
    batch_config.params.min_nodes = 50;
    batch_config.params.max_nodes = 250;
    batch_config.coff_ratio = *ratio;
    batch_config.count = static_cast<int>(*tasks);
    batch_config.seed = static_cast<std::uint64_t>(*seed);
    const auto batch = exp::generate_batch(batch_config);
    const int m = static_cast<int>(*cores);

    std::cout << "== Acceptance ratio, m = " << m << ", C_off/vol = "
              << format_double(100.0 * *ratio, 0) << "%, " << *tasks
              << " random tasks ==\n\n";

    // Deadline = tightness * len(G): tightness 1 is the absolute floor for
    // any platform; large tightness approaches vol-dominated feasibility.
    TextTable table({"D / len(G)", "R_hom accepts", "R_het accepts",
                     "best-of accepts"});
    for (const double tightness :
         {1.1, 1.3, 1.5, 1.8, 2.2, 2.8, 3.5, 4.5, 6.0}) {
      int hom_ok = 0;
      int het_ok = 0;
      int best_ok = 0;
      for (const auto& dag : batch) {
        const auto analysis = analysis::analyze_heterogeneous(dag, m);
        const double len = static_cast<double>(analysis.len_original);
        const Frac deadline(static_cast<graph::Time>(tightness * len));
        if (analysis.r_hom <= deadline) ++hom_ok;
        if (analysis.r_het <= deadline) ++het_ok;
        if (frac_min(analysis.r_hom, analysis.r_het) <= deadline) ++best_ok;
      }
      const double n = static_cast<double>(batch.size());
      table.add_row({format_double(tightness, 1),
                     format_double(100.0 * hom_ok / n, 1) + "%",
                     format_double(100.0 * het_ok / n, 1) + "%",
                     format_double(100.0 * best_ok / n, 1) + "%"});
    }
    std::cout << table.render()
              << "\nbest-of dominates both tests by construction; the gap "
                 "between the R_hom and R_het columns is the paper's "
                 "contribution in schedulability terms.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
